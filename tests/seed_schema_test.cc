/// \file seed_schema_test.cc
/// Seed-schema v2 acceptance suite. Every suite here is named SeedSchema*
/// so CI jobs can pin the whole file with --gtest_filter=SeedSchema*.
///
/// The oracle is always the scalar counter stream: under v2, every batch
/// surface — the seven native cloud kernels, the sweep runners, the SQL
/// script pipeline, the Markov chain kernels, the serving layer — must
/// be bit-identical to a serial per-lane walk of SeedSpan::StreamAt /
/// SeedVector::StreamFor, exactly as v1 surfaces are bit-identical to
/// their sigma-table twins. A canary pins that v1 and v2 actually
/// diverge (the gate is real, not a no-op).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/parameter_space.h"
#include "core/sim_runner.h"
#include "grid_test_util.h"
#include "markov/chain_runner.h"
#include "markov/markov_models.h"
#include "models/cloud_models.h"
#include "pdb/vg_table.h"
#include "random/seed_vector.h"
#include "serve/session_server.h"
#include "sql/script_runner.h"

namespace jigsaw {
namespace {

constexpr std::uint64_t kSeed = 0x5160534A00000001ULL;

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

void ExpectBitIdenticalVectors(const std::vector<double>& a,
                               const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i])) << "entry " << i;
  }
}

void ExpectBitIdenticalMetrics(const OutputMetrics& a,
                               const OutputMetrics& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(Bits(a.mean), Bits(b.mean));
  EXPECT_EQ(Bits(a.stddev), Bits(b.stddev));
  EXPECT_EQ(Bits(a.min), Bits(b.min));
  EXPECT_EQ(Bits(a.max), Bits(b.max));
  EXPECT_EQ(Bits(a.p50), Bits(b.p50));
  EXPECT_EQ(Bits(a.p95), Bits(b.p95));
  ExpectBitIdenticalVectors(a.samples, b.samples);
}

// ---------------------------------------------------------------------------
// Native kernels: the v2 draw-plane fast paths against the scalar
// counter-stream twin, at unaligned sample offsets (partial Philox
// groups at both ends) and every grid batch size.
// ---------------------------------------------------------------------------

void ExpectV2BatchMatchesScalar(const BlackBox& model,
                                std::span<const double> params,
                                std::uint64_t call_site = 0) {
  const SeedVector seeds(kSeed, 80, SeedSchema::kV2);
  for (std::size_t begin : {0u, 3u, 5u}) {
    for (std::size_t n : {1u, 7u, 64u}) {
      SCOPED_TRACE(::testing::Message() << "begin=" << begin << " n=" << n);
      const SeedSpan span = seeds.span(begin, n);
      std::vector<double> scalar(n);
      for (std::size_t i = 0; i < n; ++i) {
        RandomStream rng = span.StreamAt(i, call_site);
        scalar[i] = model.Eval(params, rng);
      }
      std::vector<double> batched(n);
      model.EvalBatch(params, span, call_site, batched);
      ExpectBitIdenticalVectors(batched, scalar);
    }
  }
}

TEST(SeedSchemaKernelTest, DemandPlaneMatchesScalar) {
  const double post[] = {30.0, 20.0};
  ExpectV2BatchMatchesScalar(*MakeDemandModel({}), post);
  const double pre[] = {10.0, 20.0};
  ExpectV2BatchMatchesScalar(*MakeDemandModel({}), pre, /*call_site=*/3);
}

TEST(SeedSchemaKernelTest, CapacityPlaneMatchesScalar) {
  const double params[] = {30.0, 10.0, 40.0};
  ExpectV2BatchMatchesScalar(*MakeCapacityModel({}), params);
}

TEST(SeedSchemaKernelTest, OverloadPlaneMatchesScalar) {
  const double params[] = {45.0, 20.0, 30.0};
  ExpectV2BatchMatchesScalar(*MakeOverloadModel({}), params);
}

TEST(SeedSchemaKernelTest, UserSelectionPlaneMatchesScalar) {
  CloudModelConfig cfg;
  cfg.num_users = 50;
  cfg.user_sim_depth = 3;
  const double params[] = {26.0};
  ExpectV2BatchMatchesScalar(*MakeUserSelectionModel(cfg), params);
}

TEST(SeedSchemaKernelTest, SynthBasisPlaneMatchesScalar) {
  CloudModelConfig cfg;
  cfg.synth_num_basis = 4;
  for (double point : {0.0, 3.0, 17.0}) {
    const double params[] = {point};
    ExpectV2BatchMatchesScalar(*MakeSynthBasisModel(cfg), params);
  }
}

TEST(SeedSchemaKernelTest, SeasonalDemandPlaneMatchesScalar) {
  const double params[] = {13.0};
  ExpectV2BatchMatchesScalar(*MakeSeasonalDemandModel({}), params);
}

TEST(SeedSchemaKernelTest, OutageCounterLoopMatchesScalar) {
  const double params[] = {26.0};
  ExpectV2BatchMatchesScalar(*MakeOutageModel({}), params);
}

TEST(SeedSchemaKernelTest, DefaultEvalBatchMatchesScalarUnderV2) {
  // A model without a native kernel takes the base-class loop, which
  // must dispatch to counter streams under a v2 span.
  const CallableBlackBox model(
      "mix", {"x"}, [](std::span<const double> p, RandomStream& rng) {
        return rng.Normal(p[0], 1.0) + rng.Exponential(0.5);
      });
  const double params[] = {4.0};
  ExpectV2BatchMatchesScalar(model, params);
}

// ---------------------------------------------------------------------------
// Sweep runner: the full batch x threads grid under v2, against the
// serial scalar v2 reference.
// ---------------------------------------------------------------------------

RunConfig V2Config(std::size_t n, std::size_t m) {
  RunConfig cfg;
  cfg.num_samples = n;
  cfg.fingerprint_size = m;
  cfg.seed_schema = SeedSchema::kV2;
  return cfg;
}

void ExpectV2GridIdentical(const RunConfig& base_cfg, const SimFunction& fn,
                           const ParameterSpace& space) {
  RunConfig ref_cfg = base_cfg;
  ref_cfg.num_threads = 1;
  ref_cfg.batch_size = 1;  // pure scalar v2 reference
  SimulationRunner reference(ref_cfg);
  const auto expected = reference.RunSweep(fn, space);

  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    RunConfig cfg = base_cfg;
    cfg.batch_size = batch;
    cfg.num_threads = threads;
    SimulationRunner runner(cfg);
    const auto got = runner.RunSweep(fn, space);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "point " << i);
      EXPECT_EQ(got[i].reused, expected[i].reused);
      EXPECT_EQ(got[i].basis_id, expected[i].basis_id);
      ExpectBitIdenticalMetrics(got[i].metrics, expected[i].metrics);
    }
    EXPECT_EQ(runner.stats().points_reused,
              reference.stats().points_reused);
  });
}

TEST(SeedSchemaSweepTest, FingerprintSweepBitIdenticalOnGrid) {
  const BlackBoxSimFunction fn(MakeDemandModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 25, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  ExpectV2GridIdentical(V2Config(200, 10), fn, space);
}

TEST(SeedSchemaSweepTest, MixedHitMissSweepBitIdenticalOnGrid) {
  CloudModelConfig mcfg;
  mcfg.synth_num_basis = 4;
  const BlackBoxSimFunction fn(MakeSynthBasisModel(mcfg));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"point", RangeDomain{0, 39, 1}}).ok());
  ExpectV2GridIdentical(V2Config(150, 10), fn, space);
}

// ---------------------------------------------------------------------------
// SQL pipeline: compiled and interpreted twins under v2 across the grid,
// against the serial interpreted v2 reference.
// ---------------------------------------------------------------------------

class SeedSchemaScriptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterCloudModels(&registry_).ok());
  }
  ModelRegistry registry_;
};

TEST_F(SeedSchemaScriptTest, SweepBitIdenticalOnGrid) {
  const std::string script =
      "DECLARE PARAMETER @w AS RANGE 5 TO 25 STEP BY 5;"
      "SELECT DemandModel(@w, 52) AS demand,"
      "       CapacityModel(@w, 10, 20) AS capacity,"
      "       demand - capacity AS gap INTO r;"
      "MONTECARLO OVER @w;";

  RunConfig ref_cfg = V2Config(96, 8);
  ref_cfg.batch_size = 1;
  ref_cfg.keep_samples = true;
  ref_cfg.compile_expressions = false;
  sql::ScriptRunner reference(&registry_, ref_cfg);
  const auto expected = reference.Run(script);
  ASSERT_TRUE(expected.ok()) << expected.status().message();

  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    for (bool compiled : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "compiled=" << compiled);
      RunConfig cfg = ref_cfg;
      cfg.batch_size = batch;
      cfg.num_threads = threads;
      cfg.compile_expressions = compiled;
      sql::ScriptRunner runner(&registry_, cfg);
      const auto got = runner.Run(script);
      ASSERT_TRUE(got.ok()) << got.status().message();
      ASSERT_TRUE(got.value().montecarlo.has_value());
      const auto& gm = *got.value().montecarlo;
      const auto& em = *expected.value().montecarlo;
      ASSERT_EQ(gm.points.size(), em.points.size());
      for (std::size_t p = 0; p < gm.points.size(); ++p) {
        SCOPED_TRACE(::testing::Message() << "point " << p);
        ASSERT_EQ(gm.points[p].columns.size(),
                  em.points[p].columns.size());
        for (const auto& [name, metrics] : em.points[p].columns) {
          auto it = gm.points[p].columns.find(name);
          ASSERT_NE(it, gm.points[p].columns.end()) << name;
          SCOPED_TRACE("column " + name);
          ExpectBitIdenticalMetrics(it->second, metrics);
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Markov chains: the plane kernels against the scalar *ForInstance
// hooks, and full chain runs across batch sizes.
// ---------------------------------------------------------------------------

void ExpectV2MarkovKernelsMatchScalar(const MarkovProcess& process) {
  const SeedVector seeds(kSeed, 80, SeedSchema::kV2);
  std::vector<double> states(80);
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i] = process.initial_state() + 0.5 * static_cast<double>(i % 7);
  }
  for (std::size_t k_begin : {0u, 3u, 5u}) {
    for (std::size_t n : {1u, 7u, 64u}) {
      SCOPED_TRACE(::testing::Message()
                   << "k_begin=" << k_begin << " n=" << n);
      const std::span<const double> in(states.data() + k_begin, n);
      std::vector<double> batched(n), scalar(n);

      process.StepBatch(in, /*step=*/9, k_begin, seeds, batched);
      for (std::size_t i = 0; i < n; ++i) {
        scalar[i] = process.StepForInstance(in[i], 9, k_begin + i, seeds);
      }
      ExpectBitIdenticalVectors(batched, scalar);

      process.EstimateBatch(in, /*anchor_step=*/4, /*step=*/9, k_begin,
                            seeds, batched);
      for (std::size_t i = 0; i < n; ++i) {
        scalar[i] =
            process.EstimateForInstance(in[i], 4, 9, k_begin + i, seeds);
      }
      ExpectBitIdenticalVectors(batched, scalar);

      process.OutputBatch(in, /*step=*/9, k_begin, seeds, batched);
      for (std::size_t i = 0; i < n; ++i) {
        scalar[i] = process.OutputForInstance(in[i], 9, k_begin + i, seeds);
      }
      ExpectBitIdenticalVectors(batched, scalar);
    }
  }
}

TEST(SeedSchemaChainTest, MarkovStepKernelsMatchScalar) {
  ExpectV2MarkovKernelsMatchScalar(MarkovStepProcess(MarkovStepConfig{}));
}

TEST(SeedSchemaChainTest, MarkovBranchKernelsMatchScalar) {
  MarkovBranchConfig cfg;
  cfg.branching = 0.3;  // branch often enough to exercise both arms
  ExpectV2MarkovKernelsMatchScalar(MarkovBranchProcess(cfg));
}

TEST(SeedSchemaChainTest, ChainRunsBitIdenticalAcrossBatchSizes) {
  const MarkovStepProcess process{MarkovStepConfig{}};
  RunConfig ref_cfg = V2Config(96, 8);
  ref_cfg.batch_size = 1;
  const ChainResult naive_ref =
      NaiveChainRunner(ref_cfg).Run(process, /*target=*/60);
  const ChainResult jump_ref =
      MarkovJumpRunner(ref_cfg).Run(process, /*target=*/60);
  for (std::size_t batch : {7u, 64u, 256u}) {
    SCOPED_TRACE(::testing::Message() << "batch " << batch);
    RunConfig cfg = ref_cfg;
    cfg.batch_size = batch;
    const ChainResult naive = NaiveChainRunner(cfg).Run(process, 60);
    ExpectBitIdenticalVectors(naive.final_states, naive_ref.final_states);
    const ChainResult jump = MarkovJumpRunner(cfg).Run(process, 60);
    ExpectBitIdenticalVectors(jump.final_states, jump_ref.final_states);
    EXPECT_EQ(jump.stats.full_rebuilds, jump_ref.stats.full_rebuilds);
  }
}

// ---------------------------------------------------------------------------
// World cache: realizations from different schemas occupy disjoint keys.
// ---------------------------------------------------------------------------

TEST(SeedSchemaWorldCacheTest, SchemasRealizeDisjointEntries) {
  pdb::WorldCache cache;
  const auto users = pdb::MakeUsersVGTable(10, 0.05, 0.05, 0.3, 2);
  const SeedVector v1(kSeed, 8, SeedSchema::kV1);
  const SeedVector v2(kSeed, 8, SeedSchema::kV2);
  ASSERT_TRUE(cache.GetOrGenerate(*users, 0, v1).ok());
  EXPECT_EQ(cache.generation_count(), 1u);
  // Same (table, master, world) under the other schema is a MISS — its
  // draws differ, so sharing the entry would silently mix derivations.
  ASSERT_TRUE(cache.GetOrGenerate(*users, 0, v2).ok());
  EXPECT_EQ(cache.generation_count(), 2u);
  // Repeat probes under each schema hit their own entries.
  ASSERT_TRUE(cache.GetOrGenerate(*users, 0, v1).ok());
  ASSERT_TRUE(cache.GetOrGenerate(*users, 0, v2).ok());
  EXPECT_EQ(cache.generation_count(), 2u);
}

// ---------------------------------------------------------------------------
// Serving layer: snapshots pin their schema; mixed-schema Connect is a
// bind error; v2 sessions stay bit-identical to standalone twins.
// ---------------------------------------------------------------------------

class SeedSchemaServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterCloudModels(&registry_).ok());
  }
  ModelRegistry registry_;
};

TEST_F(SeedSchemaServeTest, MixedSchemaConnectIsBindError) {
  RunConfig base;
  base.num_samples = 16;
  base.seed_schema = SeedSchema::kV1;
  serve::SessionServer server(&registry_, base);

  serve::SessionOptions mixed;
  mixed.seed_schema = SeedSchema::kV2;
  const auto rejected = server.TryConnect(mixed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // Matching or unset schema both admit.
  serve::SessionOptions matching;
  matching.seed_schema = SeedSchema::kV1;
  EXPECT_TRUE(server.TryConnect(matching).ok());
  EXPECT_TRUE(server.TryConnect({}).ok());
}

TEST_F(SeedSchemaServeTest, SnapshotPinsPublisherSchema) {
  RunConfig base;
  base.num_samples = 16;
  base.seed_schema = SeedSchema::kV2;
  serve::SessionServer server(&registry_, base);
  const auto snapshot = server.Publish(
      "s", "SELECT DemandModel(10, 52) AS d INTO r; MONTECARLO;");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().message();
  EXPECT_EQ(snapshot.value()->seed_schema, SeedSchema::kV2);
}

TEST_F(SeedSchemaServeTest, V2SessionMatchesStandaloneTwin) {
  const std::string script =
      "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
      "SELECT DemandModel(@w, 52) AS demand INTO r;"
      "MONTECARLO OVER @w;";
  RunConfig base;
  base.num_samples = 48;
  base.num_threads = 2;
  base.keep_samples = true;
  base.seed_schema = SeedSchema::kV2;
  serve::SessionServer server(&registry_, base);
  ASSERT_TRUE(server.Publish("sweep", script).ok());

  serve::Session& session = server.Connect();
  const auto served = session.Run("sweep");
  ASSERT_TRUE(served.ok()) << served.status().message();

  sql::ScriptRunner twin(&registry_, serve::StandaloneTwinConfig(session));
  const auto standalone = twin.Run(script);
  ASSERT_TRUE(standalone.ok()) << standalone.status().message();

  ASSERT_TRUE(served.value().montecarlo.has_value());
  ASSERT_TRUE(standalone.value().montecarlo.has_value());
  const auto& sm = *served.value().montecarlo;
  const auto& tm = *standalone.value().montecarlo;
  ASSERT_EQ(sm.points.size(), tm.points.size());
  for (std::size_t p = 0; p < sm.points.size(); ++p) {
    SCOPED_TRACE(::testing::Message() << "point " << p);
    for (const auto& [name, metrics] : tm.points[p].columns) {
      auto it = sm.points[p].columns.find(name);
      ASSERT_NE(it, sm.points[p].columns.end()) << name;
      ExpectBitIdenticalMetrics(it->second, metrics);
    }
  }
}

// ---------------------------------------------------------------------------
// Canary: the schema gate changes the draws.
// ---------------------------------------------------------------------------

TEST(SeedSchemaCanaryTest, V1AndV2SweepsDiverge) {
  const BlackBoxSimFunction fn(MakeDemandModel({}));
  const double params[] = {20.0, 52.0};
  RunConfig v1_cfg = V2Config(64, 8);
  v1_cfg.seed_schema = SeedSchema::kV1;
  v1_cfg.keep_samples = true;
  RunConfig v2_cfg = V2Config(64, 8);
  v2_cfg.keep_samples = true;
  SimulationRunner v1(v1_cfg), v2(v2_cfg);
  const auto a = v1.RunPoint(fn, params);
  const auto b = v2.RunPoint(fn, params);
  ASSERT_EQ(a.metrics.samples.size(), b.metrics.samples.size());
  int equal = 0;
  for (std::size_t i = 0; i < a.metrics.samples.size(); ++i) {
    equal += (Bits(a.metrics.samples[i]) == Bits(b.metrics.samples[i]));
  }
  EXPECT_EQ(equal, 0) << "schemas must not share draws";
}

}  // namespace
}  // namespace jigsaw
