// Tests for the symbolic-execution extension (Section 6.2's suggested
// improvement): affine views over retained basis samples, analytic
// same-basis combination, seed-aligned cross-basis combination, and the
// joint probabilities that rescue boolean queries.

#include <gtest/gtest.h>

#include <cmath>

#include "core/symbolic.h"
#include "models/cloud_models.h"

namespace jigsaw {
namespace {

RunConfig SymbolicConfig() {
  RunConfig cfg;
  cfg.num_samples = 500;
  cfg.fingerprint_size = 10;
  cfg.keep_samples = true;  // symbolic execution needs basis samples
  return cfg;
}

TEST(SymbolicTest, PaperExampleSameBasisAddition) {
  // X = 2 f(x) + 2, Y = 3 f(x) + 3 -> X + Y = 5 f(x) + 5.
  std::vector<double> basis = {0.0, 1.0, 2.0, -1.0};
  SymbolicVar x(0, &basis, 2.0, 2.0);
  SymbolicVar y(0, &basis, 3.0, 3.0);
  auto sum = x.Add(y, nullptr);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value().alpha(), 5.0);
  EXPECT_DOUBLE_EQ(sum.value().beta(), 5.0);
  EXPECT_DOUBLE_EQ(sum.value().SampleAt(2), 5.0 * 2.0 + 5.0);
}

TEST(SymbolicTest, SameBasisProbGreaterIsAnalytic) {
  std::vector<double> basis = {0.0, 1.0, 2.0, 3.0};
  SymbolicVar x(0, &basis, 2.0, 2.0);   // 2B+2
  SymbolicVar y(0, &basis, 3.0, 3.0);   // 3B+3
  // X > Y  <=>  -B > 1  <=>  B < -1: never, on this basis.
  auto p = x.ProbGreater(y);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
  // Y > X always here.
  auto q = y.ProbGreater(x);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q.value(), 1.0);
}

TEST(SymbolicTest, EqualCoefficientTieBreaksOnOffset) {
  std::vector<double> basis = {0.0, 5.0};
  SymbolicVar x(0, &basis, 1.0, 2.0);
  SymbolicVar y(0, &basis, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(x.ProbGreater(y).value(), 1.0);
  EXPECT_DOUBLE_EQ(y.ProbGreater(x).value(), 0.0);
}

TEST(SymbolicTest, ScaleAndShiftStaySymbolic) {
  std::vector<double> basis = {1.0, 2.0};
  SymbolicVar x(0, &basis, 2.0, 1.0);
  SymbolicVar scaled = x.Scale(3.0).Shift(-1.0);
  EXPECT_DOUBLE_EQ(scaled.alpha(), 6.0);
  EXPECT_DOUBLE_EQ(scaled.beta(), 2.0);
  EXPECT_EQ(scaled.basis_id(), 0u);
}

TEST(SymbolicTest, CrossBasisCombinationUsesAlignedSamples) {
  std::vector<double> b1 = {1.0, 2.0, 3.0};
  std::vector<double> b2 = {10.0, 20.0, 30.0};
  SymbolicVar x(0, &b1, 1.0, 0.0);
  SymbolicVar y(1, &b2, 1.0, 0.0);
  std::vector<double> storage;
  auto sum = x.Add(y, &storage);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value().SampleAt(0), 11.0);
  EXPECT_DOUBLE_EQ(sum.value().SampleAt(2), 33.0);
  // Without storage, cross-basis combination must fail loudly.
  EXPECT_FALSE(x.Add(y, nullptr).ok());
}

TEST(SymbolicTest, CrossBasisSizeMismatchIsError) {
  std::vector<double> b1 = {1.0, 2.0, 3.0};
  std::vector<double> b2 = {1.0, 2.0};
  SymbolicVar x(0, &b1, 1.0, 0.0);
  SymbolicVar y(1, &b2, 1.0, 0.0);
  std::vector<double> storage;
  EXPECT_FALSE(x.Add(y, &storage).ok());
  EXPECT_FALSE(x.ProbGreater(y).ok());
}

TEST(SymbolicTest, MetricsMatchDirectComputation) {
  std::vector<double> basis = {0.0, 1.0, 2.0, 3.0, 4.0};
  SymbolicVar x(0, &basis, -2.0, 10.0);  // 10, 8, 6, 4, 2
  const OutputMetrics m = x.Metrics(false, 4);
  EXPECT_EQ(m.count, 5);
  EXPECT_DOUBLE_EQ(m.mean, 6.0);
  EXPECT_DOUBLE_EQ(m.min, 2.0);
  EXPECT_DOUBLE_EQ(m.max, 10.0);
}

TEST(SymbolicTest, ProbGreaterThanThreshold) {
  std::vector<double> basis = {0.0, 1.0, 2.0, 3.0};
  SymbolicVar x(0, &basis, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(x.ProbGreaterThan(1.5), 0.5);
  EXPECT_DOUBLE_EQ(x.ProbGreaterThan(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(x.ProbGreaterThan(5.0), 0.0);
}

TEST(SymbolicTest, FromPointRequiresRetainedSamples) {
  BlackBoxSimFunction fn(MakeDemandModel({}));
  RunConfig cfg = SymbolicConfig();
  cfg.keep_samples = false;
  SimulationRunner runner(cfg);
  const auto point = runner.RunPoint(fn, std::vector<double>{10.0, 52.0});
  EXPECT_FALSE(SymbolicVar::FromPoint(runner.basis_store(), point).ok());
}

TEST(SymbolicTest, FromPointMatchesRunnerMetrics) {
  BlackBoxSimFunction fn(MakeDemandModel({}));
  SimulationRunner runner(SymbolicConfig());
  runner.RunPoint(fn, std::vector<double>{10.0, 52.0});
  const auto reused = runner.RunPoint(fn, std::vector<double>{30.0, 52.0});
  auto sym = SymbolicVar::FromPoint(runner.basis_store(), reused);
  ASSERT_TRUE(sym.ok()) << sym.status().ToString();
  const OutputMetrics direct = reused.metrics;
  const OutputMetrics symbolic = sym.value().Metrics(false, 20);
  EXPECT_NEAR(symbolic.mean, direct.mean, 1e-9 * (1 + std::fabs(direct.mean)));
  EXPECT_NEAR(symbolic.stddev, direct.stddev, 1e-9 * (1 + direct.stddev));
}

TEST(SymbolicTest, OverloadProbabilityViaSymbolicComparison) {
  // The Section 6.2 scenario: P(demand > capacity) computed from the
  // parents' mapped bases instead of a boolean black box. Checked against
  // a direct Monte Carlo estimate of the same comparison.
  CloudModelConfig mcfg;
  auto demand_model = MakeDemandModel(mcfg);
  auto capacity_model = MakeCapacityModel(mcfg);
  BlackBoxSimFunction demand_fn(demand_model, /*call_site=*/1);
  BlackBoxSimFunction capacity_fn(capacity_model, /*call_site=*/2);

  SimulationRunner runner(SymbolicConfig());
  // Week 42 with purchase 1 still settling (ordered week 40): capacity is
  // 40 or 58 with sizeable probability each, demand ~42 +/- 2 — a
  // genuinely mixed overload outcome.
  const std::vector<double> dparams = {42.0, 52.0};
  const std::vector<double> cparams = {42.0, 40.0, 60.0};
  const auto dpoint = runner.RunPoint(demand_fn, dparams);
  const auto cpoint = runner.RunPoint(capacity_fn, cparams);
  auto dsym = SymbolicVar::FromPoint(runner.basis_store(), dpoint);
  auto csym = SymbolicVar::FromPoint(runner.basis_store(), cpoint);
  ASSERT_TRUE(dsym.ok());
  ASSERT_TRUE(csym.ok());
  auto p = dsym.value().ProbGreater(csym.value());
  ASSERT_TRUE(p.ok());

  // Reference: direct per-world comparison with the same seeds.
  const SeedVector& seeds = runner.seeds();
  std::size_t above = 0;
  const std::size_t n = runner.config().num_samples;
  for (std::size_t k = 0; k < n; ++k) {
    const double d = demand_fn.Sample(dparams, k, seeds);
    const double c = capacity_fn.Sample(cparams, k, seeds);
    if (d > c) ++above;
  }
  const double reference = static_cast<double>(above) / n;
  EXPECT_NEAR(p.value(), reference, 1e-12);
  EXPECT_GT(p.value(), 0.0);
  EXPECT_LT(p.value(), 1.0);
}

// ---------------------------------------------------------------------------
// Parallel runner determinism
// ---------------------------------------------------------------------------

TEST(ParallelRunnerTest, ThreadCountDoesNotChangeResults) {
  BlackBoxSimFunction fn(MakeCapacityModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{0, 19, 1}}).ok());
  ASSERT_TRUE(space.Add({"p1", SetDomain{{5.0}}}).ok());
  ASSERT_TRUE(space.Add({"p2", SetDomain{{12.0}}}).ok());

  RunConfig serial_cfg;
  serial_cfg.num_samples = 400;
  serial_cfg.num_threads = 1;
  RunConfig parallel_cfg = serial_cfg;
  parallel_cfg.num_threads = 4;

  SimulationRunner serial(serial_cfg);
  SimulationRunner parallel(parallel_cfg);
  const auto a = serial.RunSweep(fn, space);
  const auto b = parallel.RunSweep(fn, space);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].metrics.mean, b[i].metrics.mean) << "point " << i;
    EXPECT_DOUBLE_EQ(a[i].metrics.stddev, b[i].metrics.stddev);
    EXPECT_EQ(a[i].reused, b[i].reused);
    EXPECT_EQ(a[i].basis_id, b[i].basis_id);
  }
  EXPECT_EQ(serial.basis_store().size(), parallel.basis_store().size());
}

TEST(ParallelRunnerTest, NaiveModeAlsoDeterministic) {
  BlackBoxSimFunction fn(MakeDemandModel({}));
  RunConfig cfg;
  cfg.num_samples = 300;
  cfg.use_fingerprints = false;
  cfg.num_threads = 3;
  SimulationRunner parallel(cfg);
  cfg.num_threads = 1;
  SimulationRunner serial(cfg);
  const std::vector<double> params = {15.0, 52.0};
  EXPECT_DOUBLE_EQ(parallel.RunPoint(fn, params).metrics.mean,
                   serial.RunPoint(fn, params).metrics.mean);
}

}  // namespace
}  // namespace jigsaw
