// Tests for the columnar possible-worlds storage: ColumnChunk /
// ColumnarTable primitives, VG generation straight into column spans,
// the dual-representation WorldCache, the tuple-level FoldVGColumns
// fold, and the end-to-end columnar_storage gate — every surface
// bit-identical to its boxed twin over the shared acceptance grid,
// under both seed schemas.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "grid_test_util.h"
#include "models/cloud_models.h"
#include "pdb/columnar.h"
#include "pdb/layered_engine.h"
#include "pdb/monte_carlo.h"
#include "pdb/table.h"
#include "pdb/vg_table.h"
#include "sql/script_runner.h"
#include "util/thread_pool.h"

namespace jigsaw::pdb {
namespace {

// ---------------------------------------------------------------------------
// ColumnChunk / ColumnarTable primitives
// ---------------------------------------------------------------------------

Schema MakeMixedSchema() {
  return Schema(std::vector<Column>{{"id", ValueType::kInt},
                                    {"score", ValueType::kDouble},
                                    {"ok", ValueType::kBool},
                                    {"tag", ValueType::kString}});
}

TEST(ColumnChunkTest, TypedAppendsAndBoxing) {
  ColumnChunk c(ValueType::kDouble);
  c.AppendDouble(1.5);
  c.AppendNull();
  c.AppendDouble(-2.0);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.BoxValue(0), Value(1.5));
  EXPECT_TRUE(c.BoxValue(1).is_null());
  EXPECT_EQ(c.BoxValue(2), Value(-2.0));
  // Null slots still occupy a dense lane so spans stay addressable.
  EXPECT_EQ(c.Doubles().size(), 3u);
}

TEST(ColumnChunkTest, DictionaryCodesStrings) {
  ColumnChunk c(ValueType::kString);
  c.AppendString("north");
  c.AppendString("south");
  c.AppendString("north");
  c.AppendString("north");
  ASSERT_EQ(c.size(), 4u);
  // Codes are insertion-ordered and repeated values share one entry.
  ASSERT_EQ(c.Dictionary().size(), 2u);
  EXPECT_EQ(c.Dictionary()[0], "north");
  EXPECT_EQ(c.Dictionary()[1], "south");
  const auto codes = c.StringCodes();
  EXPECT_EQ(codes[0], 0u);
  EXPECT_EQ(codes[1], 1u);
  EXPECT_EQ(codes[2], 0u);
  EXPECT_EQ(codes[3], 0u);
  EXPECT_EQ(c.BoxValue(2), Value(std::string("north")));
}

TEST(ColumnChunkTest, AppendValueIsStrictlyTyped) {
  ColumnChunk c(ValueType::kInt);
  EXPECT_TRUE(c.AppendValue(Value(std::int64_t{7})).ok());
  EXPECT_TRUE(c.AppendValue(Value::Null()).ok());
  // The columnar store never coerces: a double into an int column would
  // silently truncate and break the boxed round trip.
  EXPECT_FALSE(c.AppendValue(Value(1.5)).ok());
  EXPECT_FALSE(c.AppendValue(Value(std::string("x"))).ok());
  EXPECT_EQ(c.size(), 2u);
}

TEST(ColumnChunkTest, BulkSpansFeedTheChunk) {
  ColumnChunk c(ValueType::kDouble);
  auto span = c.AppendDoubleSpan(4);
  for (std::size_t i = 0; i < span.size(); ++i) {
    span[i] = static_cast<double>(i) * 0.5;
  }
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.Doubles()[3], 1.5);
}

TEST(ColumnChunkTest, BoolAndCodeSpansMatchPerRowAppends) {
  // The bulk-filled chunks must be indistinguishable from per-row
  // appends: same bytes, same dictionary, same boxed views.
  ColumnChunk bulk_bools(ValueType::kBool);
  ColumnChunk slow_bools(ValueType::kBool);
  auto bools = bulk_bools.AppendBoolSpan(8);
  for (std::size_t i = 0; i < 8; ++i) {
    bools[i] = i % 3 == 0 ? 1 : 0;
    slow_bools.AppendBool(i % 3 == 0);
  }
  EXPECT_TRUE(bulk_bools.SameContent(slow_bools));

  ColumnChunk bulk_strs(ValueType::kString);
  ColumnChunk slow_strs(ValueType::kString);
  const std::string names[3] = {"red", "green", "blue"};
  // Interning in first-appearance order keeps code assignment identical
  // to the per-row path.
  std::uint32_t codes[3];
  for (std::size_t c = 0; c < 3; ++c) codes[c] = bulk_strs.InternString(names[c]);
  EXPECT_EQ(bulk_strs.InternString("red"), codes[0]);  // idempotent
  auto strs = bulk_strs.AppendCodeSpan(9);
  for (std::size_t i = 0; i < 9; ++i) {
    strs[i] = codes[i % 3];
    slow_strs.AppendString(names[i % 3]);
  }
  ASSERT_EQ(bulk_strs.size(), 9u);
  EXPECT_EQ(bulk_strs.Dictionary(), slow_strs.Dictionary());
  EXPECT_TRUE(bulk_strs.SameContent(slow_strs));
  EXPECT_EQ(bulk_strs.BoxValue(4), Value(std::string("green")));
}

TEST(ColumnarTableTest, RowRoundTripIsExact) {
  Table boxed(MakeMixedSchema());
  ASSERT_TRUE(boxed
                  .AddRow({Value(std::int64_t{1}), Value(0.25), Value(true),
                           Value(std::string("a"))})
                  .ok());
  ASSERT_TRUE(boxed
                  .AddRow({Value(std::int64_t{2}), Value::Null(),
                           Value(false), Value(std::string("b"))})
                  .ok());

  auto columnar = ColumnarTable::FromTable(boxed);
  ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();
  EXPECT_EQ(columnar.value().num_rows(), 2u);

  auto back = columnar.value().ToTable();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().num_rows(), boxed.num_rows());
  for (std::size_t r = 0; r < boxed.num_rows(); ++r) {
    EXPECT_EQ(back.value().row(r), boxed.row(r)) << "row " << r;
  }
}

TEST(ColumnarTableTest, FromTableRejectsMistypedValues) {
  // AppendRowUnchecked lets a dynamically-typed plan result hold a string
  // in a double-declared column; the strict columnar boundary rejects it.
  Table boxed(Schema({{"x", ValueType::kDouble}}));
  boxed.AppendRowUnchecked({Value(std::string("oops"))});
  auto columnar = ColumnarTable::FromTable(boxed);
  ASSERT_FALSE(columnar.ok());
  EXPECT_NE(columnar.status().message().find("x"), std::string::npos);
}

TEST(ColumnarTableTest, NumericSpanAndColumnMatchBoxedErrors) {
  Table boxed(MakeMixedSchema());
  ASSERT_TRUE(boxed
                  .AddRow({Value(std::int64_t{1}), Value(2.0), Value(true),
                           Value(std::string("a"))})
                  .ok());
  auto columnar = ColumnarTable::FromTable(boxed);
  ASSERT_TRUE(columnar.ok());
  const ColumnarTable& ct = columnar.value();

  // Zero-copy span on a clean double column.
  auto span = ct.NumericSpan("score");
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span.value().size(), 1u);
  EXPECT_EQ(span.value()[0], 2.0);

  // The copying fallback widens ints and bools like Value::AsDouble.
  auto ints = ct.NumericColumn("id");
  ASSERT_TRUE(ints.ok());
  EXPECT_EQ(ints.value()[0], 1.0);
  auto bools = ct.NumericColumn("ok");
  ASSERT_TRUE(bools.ok());
  EXPECT_EQ(bools.value()[0], 1.0);

  // Errors are byte-identical to the boxed Table::NumericColumn.
  auto bad_columnar = ct.NumericColumn("tag");
  auto bad_boxed = boxed.NumericColumn("tag");
  ASSERT_FALSE(bad_columnar.ok());
  ASSERT_FALSE(bad_boxed.ok());
  EXPECT_EQ(bad_columnar.status(), bad_boxed.status());
  auto ghost_columnar = ct.NumericColumn("ghost");
  auto ghost_boxed = boxed.NumericColumn("ghost");
  ASSERT_FALSE(ghost_columnar.ok());
  EXPECT_EQ(ghost_columnar.status(), ghost_boxed.status());
}

TEST(ColumnarTableTest, CommitDetectsRaggedBulkFill) {
  ColumnarTable t(Schema({{"a", ValueType::kDouble},
                          {"b", ValueType::kDouble}}));
  t.column(0).AppendDoubleSpan(3);
  t.column(1).AppendDoubleSpan(2);  // generator bug: one column short
  EXPECT_FALSE(t.CommitAppendedRows().ok());
}

// ---------------------------------------------------------------------------
// VG generation into columns
// ---------------------------------------------------------------------------

void ExpectColumnarMatchesBoxed(const VGTableFunction& fn,
                                const SeedVector& seeds,
                                std::size_t worlds) {
  for (std::size_t w = 0; w < worlds; ++w) {
    auto boxed = fn.Generate(w, seeds);
    auto columnar = fn.GenerateColumnar(w, seeds);
    ASSERT_TRUE(boxed.ok()) << boxed.status().ToString();
    ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();
    auto reference = ColumnarTable::FromTable(boxed.value());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_TRUE(columnar.value().SameContent(reference.value()))
        << "world " << w;
  }
}

TEST(VGColumnarTest, GeneratorsRealizeBitIdenticalInBothRepresentations) {
  // Native columnar overrides must consume the stream exactly as the
  // boxed Generate — same draws, bit-identical values — under both seed
  // schemas.
  for (SeedSchema schema : {SeedSchema::kV1, SeedSchema::kV2}) {
    SCOPED_TRACE(static_cast<int>(schema));
    SeedVector seeds(0x5EED0001ULL, 16, schema);
    auto users = MakeUsersVGTable(40, 3.0, 25.0, 0.4, 4);
    ExpectColumnarMatchesBoxed(*users, seeds, 6);
    auto items = MakeScalingItemsVGTable(100);
    ExpectColumnarMatchesBoxed(*items, seeds, 6);
  }
}

TEST(VGColumnarTest, WorldExtentShardsWorldsContiguously) {
  SeedVector seeds(0x5EED0002ULL, 8);
  auto items = MakeScalingItemsVGTable(10);
  WorldExtent extent;
  extent.world_begin = 2;
  ASSERT_TRUE(extent.AppendWorld(*items, 2, seeds).ok());
  ASSERT_TRUE(extent.AppendWorld(*items, 3, seeds).ok());
  EXPECT_EQ(extent.data.num_rows(), 20u);
  EXPECT_EQ(extent.world_ids.size(), 20u);
  EXPECT_EQ(extent.world_ids.Ints()[0], 2);
  EXPECT_EQ(extent.world_ids.Ints()[19], 3);
  const auto [first0, last0] = extent.WorldRows(0);
  const auto [first1, last1] = extent.WorldRows(1);
  EXPECT_EQ(first0, 0u);
  EXPECT_EQ(last0, 10u);
  EXPECT_EQ(first1, 10u);
  EXPECT_EQ(last1, 20u);
  // Each world slice matches a standalone realization of that world.
  auto standalone = items->GenerateColumnar(3, seeds);
  ASSERT_TRUE(standalone.ok());
  const auto world3 = extent.data.column(1).Doubles().subspan(10, 10);
  const auto solo = standalone.value().column(1).Doubles();
  for (std::size_t r = 0; r < 10; ++r) EXPECT_EQ(world3[r], solo[r]);
}

// ---------------------------------------------------------------------------
// Dual-representation WorldCache
// ---------------------------------------------------------------------------

TEST(WorldCacheDualTest, ConversionsNeverCountAsGenerations) {
  WorldCache cache;
  SeedVector seeds(0x5EED0003ULL, 4);
  auto users = MakeUsersVGTable(20, 3.0, 25.0, 0.4, 4);

  auto boxed = cache.GetOrGenerate(*users, 0, seeds);
  ASSERT_TRUE(boxed.ok());
  EXPECT_EQ(cache.generation_count(), 1u);

  // The columnar view of the same world converts the cached boxed
  // realization — no second generation, identical content.
  auto columnar = cache.GetOrGenerateColumnar(*users, 0, seeds);
  ASSERT_TRUE(columnar.ok());
  EXPECT_EQ(cache.generation_count(), 1u);
  auto reference = ColumnarTable::FromTable(*boxed.value());
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(columnar.value()->SameContent(reference.value()));

  // And the reverse order on a fresh world: columnar first, boxed view
  // second, still one generation for the world.
  auto columnar1 = cache.GetOrGenerateColumnar(*users, 1, seeds);
  ASSERT_TRUE(columnar1.ok());
  EXPECT_EQ(cache.generation_count(), 2u);
  auto boxed1 = cache.GetOrGenerate(*users, 1, seeds);
  ASSERT_TRUE(boxed1.ok());
  EXPECT_EQ(cache.generation_count(), 2u);
  auto round = columnar1.value()->ToTable();
  ASSERT_TRUE(round.ok());
  for (std::size_t r = 0; r < round.value().num_rows(); ++r) {
    EXPECT_EQ(round.value().row(r), boxed1.value()->row(r));
  }
  EXPECT_EQ(cache.size(), 2u);
}

TEST(WorldCacheDualTest, ParallelMixedConsumersGenerateEachWorldOnce) {
  WorldCache cache;
  SeedVector seeds(0x5EED0004ULL, 30);
  auto users = MakeUsersVGTable(10, 3.0, 25.0, 0.4, 2);
  ThreadPool pool(8);
  // 30 worlds x {columnar, boxed} consumers racing: every world realizes
  // exactly once no matter which representation wins the race.
  pool.ParallelFor(60, [&](std::size_t i) {
    const std::size_t world = i % 30;
    if (i < 30) {
      auto r = cache.GetOrGenerateColumnar(*users, world, seeds);
      ASSERT_TRUE(r.ok());
    } else {
      auto r = cache.GetOrGenerate(*users, world, seeds);
      ASSERT_TRUE(r.ok());
    }
  });
  EXPECT_EQ(cache.size(), 30u);
  EXPECT_EQ(cache.generation_count(), 30u);
}

// ---------------------------------------------------------------------------
// FoldVGColumns: columnar vs boxed bit-identity over the acceptance grid
// ---------------------------------------------------------------------------

void ExpectMetricsBitIdentical(const std::map<std::string, OutputMetrics>& a,
                               const std::map<std::string, OutputMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.begin();
  for (auto ia = a.begin(); ia != a.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.count, ib->second.count);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ia->second.mean),
              std::bit_cast<std::uint64_t>(ib->second.mean))
        << ia->first;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ia->second.stddev),
              std::bit_cast<std::uint64_t>(ib->second.stddev))
        << ia->first;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ia->second.min),
              std::bit_cast<std::uint64_t>(ib->second.min));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ia->second.max),
              std::bit_cast<std::uint64_t>(ib->second.max));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ia->second.p50),
              std::bit_cast<std::uint64_t>(ib->second.p50));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ia->second.p95),
              std::bit_cast<std::uint64_t>(ib->second.p95));
  }
}

TEST(FoldVGColumnsTest, ColumnarBitIdenticalToBoxedAcrossGrid) {
  const std::vector<std::string> names = {"demand", "cost", "in_stock"};
  auto items = MakeScalingItemsVGTable(37);  // odd size straddles chunks
  constexpr std::size_t kWorlds = 20;
  for (SeedSchema schema : {SeedSchema::kV1, SeedSchema::kV2}) {
    SCOPED_TRACE(static_cast<int>(schema));
    SeedVector seeds(0x5EED0005ULL, kWorlds, schema);

    // Serial boxed run = the reference twin.
    RunConfig ref_cfg;
    ref_cfg.columnar_storage = false;
    ref_cfg.batch_size = 64;
    auto reference = FoldVGColumns(*items, names, kWorlds, seeds, ref_cfg,
                                   nullptr);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(reference.value().at("demand").count,
              static_cast<std::int64_t>(37 * kWorlds));

    test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
      for (bool columnar : {true, false}) {
        SCOPED_TRACE(columnar ? "columnar" : "boxed");
        RunConfig cfg;
        cfg.columnar_storage = columnar;
        cfg.batch_size = batch;
        ThreadPool pool(threads);
        auto got = FoldVGColumns(*items, names, kWorlds, seeds, cfg,
                                 threads > 1 ? &pool : nullptr);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectMetricsBitIdentical(got.value(), reference.value());
      }
    });
  }
}

TEST(FoldVGColumnsTest, CachedFoldMatchesUncachedAndCountsGenerations) {
  const std::vector<std::string> names = {"requirement"};
  auto users = MakeUsersVGTable(25, 3.0, 25.0, 0.4, 4);
  constexpr std::size_t kWorlds = 12;
  SeedVector seeds(0x5EED0006ULL, kWorlds);
  RunConfig cfg;
  auto uncached = FoldVGColumns(*users, names, kWorlds, seeds, cfg, nullptr);
  ASSERT_TRUE(uncached.ok());
  for (bool columnar : {true, false}) {
    SCOPED_TRACE(columnar ? "columnar" : "boxed");
    cfg.columnar_storage = columnar;
    WorldCache cache;
    ThreadPool pool(4);
    auto cached = FoldVGColumns(*users, names, kWorlds, seeds, cfg, &pool,
                                &cache);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectMetricsBitIdentical(cached.value(), uncached.value());
    EXPECT_EQ(cache.generation_count(), kWorlds);
    // A second fold over the same cache re-reads every world.
    auto again = FoldVGColumns(*users, names, kWorlds, seeds, cfg, &pool,
                               &cache);
    ASSERT_TRUE(again.ok());
    ExpectMetricsBitIdentical(again.value(), uncached.value());
    EXPECT_EQ(cache.generation_count(), kWorlds);
  }
}

TEST(FoldVGColumnsTest, ErrorsIdenticalOnBothStoragePaths) {
  auto items = MakeScalingItemsVGTable(5);
  SeedVector seeds(0x5EED0007ULL, 4);
  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    RunConfig cfg;
    cfg.batch_size = batch;
    ThreadPool pool(threads);
    ThreadPool* p = threads > 1 ? &pool : nullptr;
    for (const char* name : {"region", "ghost"}) {
      const std::vector<std::string> names = {name};
      cfg.columnar_storage = true;
      auto columnar = FoldVGColumns(*items, names, 4, seeds, cfg, p);
      cfg.columnar_storage = false;
      auto boxed = FoldVGColumns(*items, names, 4, seeds, cfg, p);
      ASSERT_FALSE(columnar.ok());
      ASSERT_FALSE(boxed.ok());
      // Identical error text AND code, at every grid point.
      EXPECT_EQ(columnar.status(), boxed.status()) << name;
    }
  });
}

// ---------------------------------------------------------------------------
// End-to-end gate: SQL scripts byte-identical with the gate on and off
// ---------------------------------------------------------------------------

class ColumnarSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterCloudModels(&registry_).ok());
  }
  ModelRegistry registry_;
};

TEST_F(ColumnarSqlTest, ScriptsByteIdenticalAcrossGateAndGrid) {
  const std::string scenario =
      "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
      "SELECT DemandModel(@w, 52) AS demand,"
      "       2 * demand AS doubled INTO r;";
  const std::vector<std::string> statements = {
      "MONTECARLO;",
      "MONTECARLO USING LAYERED;",
      "MONTECARLO OVER @w IN (10, 25) USING DIRECT;",
      "MONTECARLO OVER @w IN (10, 25) USING LAYERED;",
  };
  for (SeedSchema schema : {SeedSchema::kV1, SeedSchema::kV2}) {
    for (const auto& statement : statements) {
      SCOPED_TRACE(statement + " schema=" +
                   std::to_string(static_cast<int>(schema)));
      const std::string script = scenario + statement;
      // At every grid point the gate-off run is the reference twin: the
      // gate-on report must match it byte for byte. (The report embeds
      // the thread count, so cross-thread bit-identity is asserted on the
      // boxed reports — which existing suites already pin to serial.)
      std::string serial_boxed;
      test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
        auto run = [&](bool columnar) {
          RunConfig cfg;
          cfg.num_samples = 60;
          cfg.seed_schema = schema;
          cfg.columnar_storage = columnar;
          cfg.num_threads = threads;
          cfg.batch_size = batch;
          sql::ScriptRunner runner(&registry_, cfg);
          auto outcome = runner.Run(script);
          EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
          return outcome.ok() ? outcome.value().Report() : std::string();
        };
        const std::string boxed = run(false);
        EXPECT_EQ(run(true), boxed);
        // The metric lines (everything but the engine banner) also match
        // the serial boxed run across the whole grid.
        const std::string tail = boxed.substr(boxed.find("\n  "));
        if (serial_boxed.empty()) serial_boxed = tail;
        EXPECT_EQ(tail, serial_boxed);
      });
    }
  }
}

TEST_F(ColumnarSqlTest, ErrorTextIdenticalAcrossGate) {
  // An error-shaped script must surface the same message (and the same
  // failing coordinate) regardless of the storage gate.
  const std::string script =
      "DECLARE PARAMETER @p AS RANGE 0 TO 1 STEP BY 1;"
      "SELECT 1 / CoinFlip(0.0) AS q INTO r;"
      "MONTECARLO OVER @p IN (0, 1);";
  std::vector<std::string> messages;
  for (bool columnar : {true, false}) {
    RunConfig cfg;
    cfg.num_samples = 8;
    cfg.columnar_storage = columnar;
    sql::ScriptRunner runner(&registry_, cfg);
    auto outcome = runner.Run(script);
    ASSERT_FALSE(outcome.ok());
    messages.push_back(outcome.status().ToString());
  }
  EXPECT_EQ(messages[0], messages[1]);
}

// ---------------------------------------------------------------------------
// LayeredEngine under the gate
// ---------------------------------------------------------------------------

TEST(ColumnarLayeredTest, CachedVGScanBitIdenticalAcrossGate) {
  auto users = MakeUsersVGTable(60, 0.05, 0.05, 0.3);
  auto run = [&](bool columnar, std::size_t threads, std::size_t batch) {
    RunConfig cfg;
    cfg.num_samples = 24;
    cfg.columnar_storage = columnar;
    cfg.num_threads = threads;
    cfg.batch_size = batch;
    LayeredEngine engine(cfg);
    auto result = engine.RunPoint(
        [&]() -> Result<PlanNodePtr> {
          std::vector<AggSpec> aggs;
          aggs.push_back(AggSpec{AggKind::kSum,
                                 MakeColumnRef(2, "requirement"), "total"});
          return MakeHashAggregate(
              MakeCachedVGScan(users, &engine.world_cache()), {}, {},
              std::move(aggs));
        },
        std::vector<double>{});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };
  const auto reference = run(false, 1, 64);
  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    for (bool columnar : {true, false}) {
      SCOPED_TRACE(columnar ? "columnar" : "boxed");
      const auto got = run(columnar, threads, batch);
      ASSERT_EQ(got.columns.size(), reference.columns.size());
      for (const auto& [name, metrics] : reference.columns) {
        ASSERT_TRUE(got.columns.count(name));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got.columns.at(name).mean),
                  std::bit_cast<std::uint64_t>(metrics.mean))
            << name;
      }
    }
  });
}

}  // namespace
}  // namespace jigsaw::pdb
