// Differential and property tests for the world-partitioned columnar
// equi-join (pdb/join.h). The contract under test: sort-merge and hash
// kernels, over both storage representations, any thread count and any
// batch size, are bit-identical to the serial boxed nested-loop oracle —
// values, output row order, metrics, error text AND error ordering.

#include "pdb/join.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/run_config.h"
#include "pdb/operators.h"
#include "pdb/table.h"
#include "pdb/vg_table.h"
#include "random/seed_vector.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

#include "grid_test_util.h"

namespace jigsaw::pdb {
namespace {

Value I(std::int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }
Value B(bool v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

// ---------------------------------------------------------------------------
// Deterministic keyed VG tables. The join consumes no randomness, so the
// differential tables derive rows arithmetically from the world id —
// duplicate keys, NULL keys and varying row counts included — and stay
// deterministic across every execution path by construction.
// ---------------------------------------------------------------------------

class KeyedVGTable final : public VGTableFunction {
 public:
  using FillFn = std::function<Status(std::size_t world, Table* out)>;
  KeyedVGTable(std::string name, Schema schema, FillFn fill)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        fill_(std::move(fill)) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<Table> Generate(std::size_t sample_id,
                         const SeedVector& /*seeds*/) const override {
    Table t(schema_);
    JIGSAW_RETURN_IF_ERROR(fill_(sample_id, &t));
    return t;
  }

 private:
  std::string name_;
  Schema schema_;
  FillFn fill_;
};

// Left side: 6..8 rows per world, int keys in [0, 5) with duplicates,
// every fourth key NULL.
VGTableFunctionPtr MakeIntLeft() {
  Schema schema({{"k", ValueType::kInt}, {"lval", ValueType::kDouble}});
  return std::make_shared<KeyedVGTable>(
      "int_left", schema, [](std::size_t w, Table* out) -> Status {
        const std::size_t rows = 6 + w % 3;
        for (std::size_t i = 0; i < rows; ++i) {
          Value key = i % 4 == 3
                          ? Value::Null()
                          : I(static_cast<std::int64_t>((2 * i + w) % 5));
          JIGSAW_RETURN_IF_ERROR(out->AddRow(
              {std::move(key), D(100.0 * static_cast<double>(w) +
                                 static_cast<double>(i))}));
        }
        return Status::OK();
      });
}

// Right side: 7..8 rows per world, overlapping key range, every fifth
// key NULL.
VGTableFunctionPtr MakeIntRight() {
  Schema schema({{"k2", ValueType::kInt}, {"rval", ValueType::kDouble}});
  return std::make_shared<KeyedVGTable>(
      "int_right", schema, [](std::size_t w, Table* out) -> Status {
        const std::size_t rows = 8 - w % 2;
        for (std::size_t i = 0; i < rows; ++i) {
          Value key = i % 5 == 4
                          ? Value::Null()
                          : I(static_cast<std::int64_t>((i + w) % 5));
          JIGSAW_RETURN_IF_ERROR(out->AddRow(
              {std::move(key), D(1000.0 * static_cast<double>(w) +
                                 static_cast<double>(i))}));
        }
        return Status::OK();
      });
}

// Double keys exercising the IEEE edge cases: -0.0 / +0.0 (one equality
// class, two bit patterns) and NaN (matches nothing).
Value DoubleKey(std::size_t w, std::size_t i) {
  if (i % 7 == 6) return D(std::numeric_limits<double>::quiet_NaN());
  if (i % 3 == 0) return D((w + i) % 2 == 0 ? 0.0 : -0.0);
  return D(0.5 * static_cast<double>((i + w) % 4));
}

VGTableFunctionPtr MakeDoubleLeft() {
  Schema schema({{"dk", ValueType::kDouble}, {"lval", ValueType::kDouble}});
  return std::make_shared<KeyedVGTable>(
      "double_left", schema, [](std::size_t w, Table* out) -> Status {
        for (std::size_t i = 0; i < 8 + w % 2; ++i) {
          JIGSAW_RETURN_IF_ERROR(out->AddRow(
              {DoubleKey(w, i), D(10.0 * static_cast<double>(i) +
                                  static_cast<double>(w))}));
        }
        return Status::OK();
      });
}

VGTableFunctionPtr MakeDoubleRight() {
  Schema schema({{"dk2", ValueType::kDouble}, {"rval", ValueType::kDouble}});
  return std::make_shared<KeyedVGTable>(
      "double_right", schema, [](std::size_t w, Table* out) -> Status {
        for (std::size_t i = 0; i < 9; ++i) {
          JIGSAW_RETURN_IF_ERROR(out->AddRow(
              {DoubleKey(w + 1, i), D(-3.0 * static_cast<double>(i) -
                                      static_cast<double>(w))}));
        }
        return Status::OK();
      });
}

VGTableFunctionPtr MakeStringLeft() {
  Schema schema({{"s", ValueType::kString}, {"lval", ValueType::kDouble}});
  static const char* kNames[] = {"red", "green", "blue"};
  return std::make_shared<KeyedVGTable>(
      "string_left", schema, [](std::size_t w, Table* out) -> Status {
        for (std::size_t i = 0; i < 7; ++i) {
          Value key = i % 6 == 5 ? Value::Null() : S(kNames[(i + w) % 3]);
          JIGSAW_RETURN_IF_ERROR(out->AddRow(
              {std::move(key), D(static_cast<double>(i * 10 + w))}));
        }
        return Status::OK();
      });
}

VGTableFunctionPtr MakeStringRight() {
  Schema schema({{"s2", ValueType::kString}, {"rval", ValueType::kDouble}});
  static const char* kNames[] = {"blue", "red", "yellow", "green"};
  return std::make_shared<KeyedVGTable>(
      "string_right", schema, [](std::size_t w, Table* out) -> Status {
        for (std::size_t i = 0; i < 6 + w % 2; ++i) {
          JIGSAW_RETURN_IF_ERROR(out->AddRow(
              {S(kNames[(2 * i + w) % 4]), D(static_cast<double>(i) - 5.0)}));
        }
        return Status::OK();
      });
}

// A generator that realizes normally below `fail_from` and errors at
// every world at or past it — for proving error text and ordering match
// the serial boxed loop on every path.
VGTableFunctionPtr MakeFailingTable(std::string name,
                                    std::size_t fail_from) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kDouble}});
  return std::make_shared<KeyedVGTable>(
      name, schema,
      [name, fail_from](std::size_t w, Table* out) -> Status {
        if (w >= fail_from) {
          return Status::ExecutionError(
              StrFormat("VG generator '%s' failed in world %zu",
                        name.c_str(), w));
        }
        for (std::size_t i = 0; i < 4; ++i) {
          JIGSAW_RETURN_IF_ERROR(
              out->AddRow({I(static_cast<std::int64_t>(i % 3)),
                           D(static_cast<double>(w * 10 + i))}));
        }
        return Status::OK();
      });
}

// Right twin of the failing table with matching key space and no NULLs.
VGTableFunctionPtr MakePlainRight(std::string name) {
  Schema schema({{"k2", ValueType::kInt}, {"v2", ValueType::kDouble}});
  return std::make_shared<KeyedVGTable>(
      name, schema, [](std::size_t w, Table* out) -> Status {
        for (std::size_t i = 0; i < 5; ++i) {
          JIGSAW_RETURN_IF_ERROR(
              out->AddRow({I(static_cast<std::int64_t>((i + w) % 3)),
                           D(static_cast<double>(i))}));
        }
        return Status::OK();
      });
}

void ExpectSameMetrics(const std::map<std::string, OutputMetrics>& expected,
                       const std::map<std::string, OutputMetrics>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [name, m] : expected) {
    ASSERT_TRUE(actual.count(name)) << name;
    const auto& a = actual.at(name);
    EXPECT_EQ(m.count, a.count) << name;
    EXPECT_EQ(m.mean, a.mean) << name;
    EXPECT_EQ(m.stddev, a.stddev) << name;
    EXPECT_EQ(m.std_error, a.std_error) << name;
    EXPECT_EQ(m.p50, a.p50) << name;
    EXPECT_EQ(m.p95, a.p95) << name;
    EXPECT_EQ(m.min, a.min) << name;
    EXPECT_EQ(m.max, a.max) << name;
  }
}

// ---------------------------------------------------------------------------
// ResolveJoin: every bind-time error shape, in resolution order.
// ---------------------------------------------------------------------------

Schema IntKeyed(const std::string& key, const std::string& val) {
  return Schema({{key, ValueType::kInt}, {val, ValueType::kDouble}});
}

TEST(JoinResolveTest, UnknownLeftKeyFailsFirst) {
  auto r = ResolveJoin(IntKeyed("a", "x"), IntKeyed("b", "y"),
                       {"nope", "also_nope"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "no column named 'nope'");
}

TEST(JoinResolveTest, UnknownRightKey) {
  auto r = ResolveJoin(IntKeyed("a", "x"), IntKeyed("b", "y"), {"a", "nope"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "no column named 'nope'");
}

TEST(JoinResolveTest, MismatchedKeyTypes) {
  Schema right({{"b", ValueType::kString}, {"y", ValueType::kDouble}});
  auto r = ResolveJoin(IntKeyed("a", "x"), right, {"a", "b"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(),
            "join keys 'a' (INT) and 'b' (STRING) have mismatched types");
}

TEST(JoinResolveTest, NullTypedKeysRejected) {
  Schema left({{"a", ValueType::kNull}});
  Schema right({{"b", ValueType::kNull}});
  auto r = ResolveJoin(left, right, {"a", "b"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("mismatched types"), std::string::npos);
}

TEST(JoinResolveTest, DuplicateOutputColumnCaseInsensitive) {
  auto r = ResolveJoin(IntKeyed("k", "shared"), IntKeyed("k2", "SHARED"),
                       {"k", "k2"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "duplicate column 'SHARED' in join output");
}

TEST(JoinResolveTest, ResolvesCaseInsensitivelyAndConcatenatesSchema) {
  auto r = ResolveJoin(IntKeyed("Key", "x"), IntKeyed("KEY2", "y"),
                       {"kEy", "key2"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().left_slot, 0u);
  EXPECT_EQ(r.value().right_slot, 0u);
  EXPECT_EQ(r.value().key_type, ValueType::kInt);
  ASSERT_EQ(r.value().output.num_columns(), 4u);
  EXPECT_EQ(r.value().output.column(0).name, "Key");
  EXPECT_EQ(r.value().output.column(2).name, "KEY2");
}

// ---------------------------------------------------------------------------
// The oracle itself: canonical order and NULL semantics on hand-built
// tables small enough to enumerate by hand.
// ---------------------------------------------------------------------------

TEST(JoinOracleTest, CanonicalNestedLoopOrder) {
  Table left(IntKeyed("k", "lv"));
  ASSERT_TRUE(left.AddRow({I(1), D(10.0)}).ok());
  ASSERT_TRUE(left.AddRow({I(2), D(20.0)}).ok());
  ASSERT_TRUE(left.AddRow({I(1), D(30.0)}).ok());
  Table right(IntKeyed("k2", "rv"));
  ASSERT_TRUE(right.AddRow({I(2), D(1.0)}).ok());
  ASSERT_TRUE(right.AddRow({I(1), D(2.0)}).ok());
  ASSERT_TRUE(right.AddRow({I(1), D(3.0)}).ok());

  auto join = ResolveJoin(left.schema(), right.schema(), {"k", "k2"});
  ASSERT_TRUE(join.ok());
  auto out = NestedLoopJoinOracle(left, right, join.value());
  ASSERT_TRUE(out.ok());
  // Left rows in order; for each, right matches in order.
  const std::vector<std::pair<double, double>> expected = {
      {10.0, 2.0}, {10.0, 3.0}, {20.0, 1.0}, {30.0, 2.0}, {30.0, 3.0}};
  ASSERT_EQ(out.value().num_rows(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out.value().row(i)[1].AsDouble(), expected[i].first) << i;
    EXPECT_EQ(out.value().row(i)[3].AsDouble(), expected[i].second) << i;
  }
}

TEST(JoinOracleTest, NullKeysNeverMatchNotEvenEachOther) {
  Table left(IntKeyed("k", "lv"));
  ASSERT_TRUE(left.AddRow({Value::Null(), D(1.0)}).ok());
  ASSERT_TRUE(left.AddRow({I(7), D(2.0)}).ok());
  Table right(IntKeyed("k2", "rv"));
  ASSERT_TRUE(right.AddRow({Value::Null(), D(3.0)}).ok());
  ASSERT_TRUE(right.AddRow({I(7), D(4.0)}).ok());

  auto join = ResolveJoin(left.schema(), right.schema(), {"k", "k2"});
  ASSERT_TRUE(join.ok());
  auto out = NestedLoopJoinOracle(left, right, join.value());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().num_rows(), 1u);
  EXPECT_EQ(out.value().row(0)[1].AsDouble(), 2.0);
  EXPECT_EQ(out.value().row(0)[3].AsDouble(), 4.0);
}

// ---------------------------------------------------------------------------
// JoinPartition: both span kernels, all four key types, bit-identical to
// the oracle (SameContent compares bit patterns, so even a -0.0 gathered
// where a +0.0 belongs would fail).
// ---------------------------------------------------------------------------

void ExpectPartitionMatchesOracle(const Table& left, const Table& right,
                                  const std::string& lkey,
                                  const std::string& rkey) {
  auto join = ResolveJoin(left.schema(), right.schema(), {lkey, rkey});
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  auto oracle = NestedLoopJoinOracle(left, right, join.value());
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  auto oracle_columnar = ColumnarTable::FromTable(oracle.value());
  ASSERT_TRUE(oracle_columnar.ok()) << oracle_columnar.status().ToString();

  auto lcol = ColumnarTable::FromTable(left);
  auto rcol = ColumnarTable::FromTable(right);
  ASSERT_TRUE(lcol.ok());
  ASSERT_TRUE(rcol.ok());
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kSortMerge, JoinAlgorithm::kHash}) {
    SCOPED_TRACE(algorithm == JoinAlgorithm::kSortMerge ? "sort-merge"
                                                        : "hash");
    ColumnarTable out(join.value().output);
    ASSERT_TRUE(JoinPartition(lcol.value(), 0, lcol.value().num_rows(),
                              rcol.value(), 0, rcol.value().num_rows(),
                              join.value(), algorithm, &out)
                    .ok());
    EXPECT_TRUE(out.SameContent(oracle_columnar.value()));
  }
}

TEST(JoinPartitionTest, IntKeysWithDuplicatesAndNulls) {
  Table left(IntKeyed("k", "lv"));
  Table right(IntKeyed("k2", "rv"));
  for (std::size_t i = 0; i < 12; ++i) {
    Value key = i % 4 == 3 ? Value::Null()
                           : I(static_cast<std::int64_t>((i * 3) % 5));
    ASSERT_TRUE(
        left.AddRow({std::move(key), D(static_cast<double>(i))}).ok());
  }
  for (std::size_t j = 0; j < 10; ++j) {
    Value key = j % 5 == 4 ? Value::Null()
                           : I(static_cast<std::int64_t>(j % 6));
    ASSERT_TRUE(
        right.AddRow({std::move(key), D(100.0 + static_cast<double>(j))})
            .ok());
  }
  ExpectPartitionMatchesOracle(left, right, "k", "k2");
}

TEST(JoinPartitionTest, DoubleKeysSignedZeroAndNaN) {
  Schema ls({{"dk", ValueType::kDouble}, {"lv", ValueType::kDouble}});
  Schema rs({{"dk2", ValueType::kDouble}, {"rv", ValueType::kDouble}});
  Table left(ls);
  Table right(rs);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> lkeys = {0.0, -0.0, 1.5, nan, 2.5, 1.5, -0.0};
  const std::vector<double> rkeys = {-0.0, 1.5, nan, 0.0, 3.5, 1.5};
  for (std::size_t i = 0; i < lkeys.size(); ++i) {
    ASSERT_TRUE(
        left.AddRow({D(lkeys[i]), D(static_cast<double>(i))}).ok());
  }
  for (std::size_t j = 0; j < rkeys.size(); ++j) {
    ASSERT_TRUE(
        right.AddRow({D(rkeys[j]), D(50.0 + static_cast<double>(j))}).ok());
  }
  ExpectPartitionMatchesOracle(left, right, "dk", "dk2");
}

TEST(JoinPartitionTest, BoolKeys) {
  Schema ls({{"bk", ValueType::kBool}, {"lv", ValueType::kDouble}});
  Schema rs({{"bk2", ValueType::kBool}, {"rv", ValueType::kDouble}});
  Table left(ls);
  Table right(rs);
  for (std::size_t i = 0; i < 6; ++i) {
    Value key = i == 4 ? Value::Null() : B(i % 2 == 0);
    ASSERT_TRUE(
        left.AddRow({std::move(key), D(static_cast<double>(i))}).ok());
  }
  for (std::size_t j = 0; j < 5; ++j) {
    ASSERT_TRUE(
        right.AddRow({B(j % 3 == 0), D(10.0 * static_cast<double>(j))})
            .ok());
  }
  ExpectPartitionMatchesOracle(left, right, "bk", "bk2");
}

TEST(JoinPartitionTest, StringKeys) {
  Schema ls({{"s", ValueType::kString}, {"lv", ValueType::kDouble}});
  Schema rs({{"s2", ValueType::kString}, {"rv", ValueType::kDouble}});
  Table left(ls);
  Table right(rs);
  const std::vector<std::string> lkeys = {"red",  "blue", "red",
                                          "green", "blue", "red"};
  const std::vector<std::string> rkeys = {"blue", "red", "yellow", "red"};
  for (std::size_t i = 0; i < lkeys.size(); ++i) {
    ASSERT_TRUE(
        left.AddRow({S(lkeys[i]), D(static_cast<double>(i))}).ok());
  }
  for (std::size_t j = 0; j < rkeys.size(); ++j) {
    ASSERT_TRUE(
        right.AddRow({S(rkeys[j]), D(-static_cast<double>(j))}).ok());
  }
  ExpectPartitionMatchesOracle(left, right, "s", "s2");
}

TEST(JoinPartitionTest, EmptySidesYieldEmptyOutput) {
  Table left(IntKeyed("k", "lv"));
  Table right(IntKeyed("k2", "rv"));
  ASSERT_TRUE(right.AddRow({I(1), D(1.0)}).ok());
  ExpectPartitionMatchesOracle(left, right, "k", "k2");   // empty left
  ExpectPartitionMatchesOracle(right, left, "k2", "k");   // empty right
}

// ---------------------------------------------------------------------------
// JoinWorlds: world partitions never mix, world ids are stamped, and
// mismatched extents are rejected.
// ---------------------------------------------------------------------------

TEST(JoinWorldsTest, RejectsMismatchedWorldRanges) {
  const SeedVector seeds(0x77, 8);
  auto left = MakeIntLeft();
  auto right = MakeIntRight();
  WorldExtent lext, rext;
  lext.world_begin = 0;
  rext.world_begin = 0;
  ASSERT_TRUE(lext.AppendWorld(*left, 0, seeds).ok());
  ASSERT_TRUE(lext.AppendWorld(*left, 1, seeds).ok());
  ASSERT_TRUE(rext.AppendWorld(*right, 0, seeds).ok());

  auto join = ResolveJoin(left->schema(), right->schema(), {"k", "k2"});
  ASSERT_TRUE(join.ok());
  WorldExtent out;
  Status s = JoinWorlds(lext, rext, join.value(), JoinAlgorithm::kSortMerge,
                        &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "joined extents cover different world ranges");
}

TEST(JoinWorldsTest, PartitionsWorldsAndStampsWorldIds) {
  const SeedVector seeds(0x77, 8);
  auto left = MakeIntLeft();
  auto right = MakeIntRight();
  auto join = ResolveJoin(left->schema(), right->schema(), {"k", "k2"});
  ASSERT_TRUE(join.ok());

  constexpr std::size_t kWorlds = 4;
  WorldExtent lext, rext;
  lext.world_begin = 0;
  rext.world_begin = 0;
  for (std::size_t w = 0; w < kWorlds; ++w) {
    ASSERT_TRUE(lext.AppendWorld(*left, w, seeds).ok());
    ASSERT_TRUE(rext.AppendWorld(*right, w, seeds).ok());
  }
  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kSortMerge, JoinAlgorithm::kHash}) {
    WorldExtent out;
    ASSERT_TRUE(JoinWorlds(lext, rext, join.value(), algorithm, &out).ok());
    ASSERT_EQ(out.row_offsets.size(), kWorlds);
    ASSERT_EQ(out.world_ids.size(), out.data.num_rows());

    // Each world's partition is bit-identical to the per-world oracle,
    // and every row of it carries that world's id.
    std::size_t total = 0;
    for (std::size_t w = 0; w < kWorlds; ++w) {
      auto lt = left->Generate(w, seeds);
      auto rt = right->Generate(w, seeds);
      ASSERT_TRUE(lt.ok());
      ASSERT_TRUE(rt.ok());
      auto oracle = NestedLoopJoinOracle(lt.value(), rt.value(), join.value());
      ASSERT_TRUE(oracle.ok());
      const auto [first, last] = out.WorldRows(w);
      ASSERT_EQ(last - first, oracle.value().num_rows()) << "world " << w;
      Row boxed;
      for (std::size_t r = first; r < last; ++r) {
        EXPECT_EQ(out.world_ids.Ints()[r], static_cast<std::int64_t>(w));
        out.data.BoxRow(r, &boxed);
        const Row& expect = oracle.value().row(r - first);
        ASSERT_EQ(boxed.size(), expect.size());
        for (std::size_t c = 0; c < expect.size(); ++c) {
          EXPECT_TRUE(boxed[c] == expect[c])
              << "world " << w << " row " << r - first << " col " << c;
        }
      }
      total += last - first;
    }
    EXPECT_EQ(total, out.data.num_rows());
  }
}

// ---------------------------------------------------------------------------
// MakeJoinedVGScan: the Volcano leaf streams exactly the oracle's rows
// and insists on a seed vector.
// ---------------------------------------------------------------------------

TEST(JoinScanNodeTest, RequiresSeedVector) {
  auto left = MakeIntLeft();
  auto right = MakeIntRight();
  auto join = ResolveJoin(left->schema(), right->schema(), {"k", "k2"});
  ASSERT_TRUE(join.ok());
  auto plan = MakeJoinedVGScan(left, right, join.value());
  EvalContext ctx;
  ctx.seeds = nullptr;
  Status s = plan->Open(ctx);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "joined VG scan requires a seed vector");
}

TEST(JoinScanNodeTest, StreamsOracleRowsPerWorld) {
  const SeedVector seeds(0x99, 4);
  auto left = MakeIntLeft();
  auto right = MakeIntRight();
  auto join = ResolveJoin(left->schema(), right->schema(), {"k", "k2"});
  ASSERT_TRUE(join.ok());
  for (std::size_t w = 0; w < 3; ++w) {
    auto plan = MakeJoinedVGScan(left, right, join.value());
    EvalContext ctx;
    ctx.sample_id = w;
    ctx.seeds = &seeds;
    auto streamed = ExecuteToTable(*plan, ctx);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

    auto lt = left->Generate(w, seeds);
    auto rt = right->Generate(w, seeds);
    ASSERT_TRUE(lt.ok());
    ASSERT_TRUE(rt.ok());
    auto oracle = NestedLoopJoinOracle(lt.value(), rt.value(), join.value());
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(streamed.value().num_rows(), oracle.value().num_rows());
    for (std::size_t r = 0; r < oracle.value().num_rows(); ++r) {
      const Row& got = streamed.value().row(r);
      const Row& expect = oracle.value().row(r);
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t c = 0; c < expect.size(); ++c) {
        EXPECT_TRUE(got[c] == expect[c]) << "row " << r << " col " << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// FoldJoinedVGColumns: the full differential grid. Reference = serial
// boxed (threads=1, columnar off); every (storage, algorithm, threads,
// batch) combination must reproduce its metrics bit-for-bit.
// ---------------------------------------------------------------------------

class JoinFoldTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorlds = 12;

  Result<std::map<std::string, OutputMetrics>> Fold(
      const VGTableFunctionPtr& left, const VGTableFunctionPtr& right,
      const JoinSpec& keys, const std::vector<std::string>& columns,
      const RunConfig& config, WorldCache* cache = nullptr) {
    const SeedVector seeds(config.master_seed, config.num_samples,
                           config.seed_schema);
    std::unique_ptr<ThreadPool> pool;
    if (config.num_threads > 1) {
      pool = std::make_unique<ThreadPool>(config.num_threads);
    }
    return FoldJoinedVGColumns(left, right, keys, columns,
                               config.num_samples, seeds, config, pool.get(),
                               cache);
  }

  RunConfig BaseConfig() const {
    RunConfig config;
    config.num_samples = kWorlds;
    config.master_seed = 0xA11CE;
    return config;
  }

  // Serial boxed reference at batch 1 — the most granular serial walk.
  Result<std::map<std::string, OutputMetrics>> Reference(
      const VGTableFunctionPtr& left, const VGTableFunctionPtr& right,
      const JoinSpec& keys, const std::vector<std::string>& columns) {
    RunConfig config = BaseConfig();
    config.columnar_storage = false;
    config.num_threads = 1;
    config.batch_size = 1;
    return Fold(left, right, keys, columns, config);
  }

  void ExpectGridBitIdentical(const VGTableFunctionPtr& left,
                              const VGTableFunctionPtr& right,
                              const JoinSpec& keys,
                              const std::vector<std::string>& columns) {
    auto reference = Reference(left, right, keys, columns);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
      for (bool columnar : {false, true}) {
        for (JoinAlgorithm algorithm :
             {JoinAlgorithm::kSortMerge, JoinAlgorithm::kHash}) {
          SCOPED_TRACE(::testing::Message()
                       << (columnar ? "columnar" : "boxed") << " "
                       << (algorithm == JoinAlgorithm::kSortMerge
                               ? "sort-merge"
                               : "hash"));
          RunConfig config = BaseConfig();
          config.columnar_storage = columnar;
          config.join_algorithm = algorithm;
          config.num_threads = threads;
          config.batch_size = batch;
          auto got = Fold(left, right, keys, columns, config);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ExpectSameMetrics(reference.value(), got.value());
        }
      }
    });
  }
};

TEST_F(JoinFoldTest, IntKeysBitIdenticalAcrossFullGrid) {
  ExpectGridBitIdentical(MakeIntLeft(), MakeIntRight(), {"k", "k2"},
                         {"lval", "rval"});
}

TEST_F(JoinFoldTest, DoubleKeysBitIdenticalAcrossFullGrid) {
  ExpectGridBitIdentical(MakeDoubleLeft(), MakeDoubleRight(), {"dk", "dk2"},
                         {"lval", "rval"});
}

TEST_F(JoinFoldTest, StringKeysBitIdenticalAcrossFullGrid) {
  ExpectGridBitIdentical(MakeStringLeft(), MakeStringRight(), {"s", "s2"},
                         {"lval", "rval"});
}

TEST_F(JoinFoldTest, UsersJoinItemsBothSeedSchemas) {
  auto users = MakeUsersVGTable(40, 0.8, 5.0, 2.0);
  auto items = MakeScalingItemsVGTable(60);
  const JoinSpec keys{"user_id", "item_id"};
  const std::vector<std::string> columns = {"requirement", "demand", "cost"};
  for (SeedSchema schema : {SeedSchema::kV1, SeedSchema::kV2}) {
    SCOPED_TRACE(schema == SeedSchema::kV1 ? "seed schema v1"
                                           : "seed schema v2");
    RunConfig ref_config = BaseConfig();
    ref_config.seed_schema = schema;
    ref_config.columnar_storage = false;
    ref_config.num_threads = 1;
    ref_config.batch_size = 1;
    auto reference = Fold(users, items, keys, columns, ref_config);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    // The join keys overlap by construction (user ids live inside the
    // item id range), so the differential is not vacuous.
    ASSERT_GT(reference.value().at("requirement").count, 0);

    test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
      for (bool columnar : {false, true}) {
        for (JoinAlgorithm algorithm :
             {JoinAlgorithm::kSortMerge, JoinAlgorithm::kHash}) {
          RunConfig config = BaseConfig();
          config.seed_schema = schema;
          config.columnar_storage = columnar;
          config.join_algorithm = algorithm;
          config.num_threads = threads;
          config.batch_size = batch;
          auto got = Fold(users, items, keys, columns, config);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ExpectSameMetrics(reference.value(), got.value());
        }
      }
    });
  }
}

TEST_F(JoinFoldTest, AllNullKeysFoldZeroTuplesEverywhere) {
  Schema schema({{"k", ValueType::kInt}, {"lval", ValueType::kDouble}});
  auto null_left = std::make_shared<KeyedVGTable>(
      "null_left", schema, [](std::size_t w, Table* out) -> Status {
        for (std::size_t i = 0; i < 3 + w % 2; ++i) {
          JIGSAW_RETURN_IF_ERROR(
              out->AddRow({Value::Null(), D(static_cast<double>(i))}));
        }
        return Status::OK();
      });
  auto reference = Reference(null_left, MakeIntRight(), {"k", "k2"},
                             {"lval", "rval"});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(reference.value().at("lval").count, 0);
  EXPECT_EQ(reference.value().at("rval").count, 0);
  ExpectGridBitIdentical(null_left, MakeIntRight(), {"k", "k2"},
                         {"lval", "rval"});
}

TEST_F(JoinFoldTest, WorldCacheSharesRealizationsAcrossRuns) {
  auto left = MakeIntLeft();
  auto right = MakeIntRight();
  const JoinSpec keys{"k", "k2"};
  const std::vector<std::string> columns = {"lval", "rval"};
  auto reference = Reference(left, right, keys, columns);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  WorldCache cache;
  RunConfig config = BaseConfig();
  config.columnar_storage = true;
  config.num_threads = 2;
  config.batch_size = 7;
  auto cached = Fold(left, right, keys, columns, config, &cache);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ExpectSameMetrics(reference.value(), cached.value());
  // One generation per (table, world), none for cache hits afterwards.
  EXPECT_EQ(cache.generation_count(), 2 * kWorlds);

  auto rerun = Fold(left, right, keys, columns, config, &cache);
  ASSERT_TRUE(rerun.ok());
  ExpectSameMetrics(reference.value(), rerun.value());
  EXPECT_EQ(cache.generation_count(), 2 * kWorlds);

  // The boxed twin re-reads the same cache entries (conversion between
  // representations never counts as a generation).
  config.columnar_storage = false;
  auto boxed = Fold(left, right, keys, columns, config, &cache);
  ASSERT_TRUE(boxed.ok());
  ExpectSameMetrics(reference.value(), boxed.value());
  EXPECT_EQ(cache.generation_count(), 2 * kWorlds);
}

// ---------------------------------------------------------------------------
// Error identity: the failing world's error text is the serial boxed
// loop's, on every path, whichever side fails first.
// ---------------------------------------------------------------------------

class JoinErrorTest : public JoinFoldTest {
 protected:
  void ExpectSameErrorEverywhere(const VGTableFunctionPtr& left,
                                 const VGTableFunctionPtr& right,
                                 const JoinSpec& keys,
                                 const std::vector<std::string>& columns,
                                 const std::string& expected_message) {
    auto reference = Reference(left, right, keys, columns);
    ASSERT_FALSE(reference.ok());
    EXPECT_EQ(reference.status().message(), expected_message);
    test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
      for (bool columnar : {false, true}) {
        for (JoinAlgorithm algorithm :
             {JoinAlgorithm::kSortMerge, JoinAlgorithm::kHash}) {
          SCOPED_TRACE(::testing::Message()
                       << (columnar ? "columnar" : "boxed"));
          RunConfig config = BaseConfig();
          config.columnar_storage = columnar;
          config.join_algorithm = algorithm;
          config.num_threads = threads;
          config.batch_size = batch;
          auto got = Fold(left, right, keys, columns, config);
          ASSERT_FALSE(got.ok());
          EXPECT_EQ(got.status().code(), reference.status().code());
          EXPECT_EQ(got.status().message(), expected_message);
        }
      }
    });
  }
};

TEST_F(JoinErrorTest, LeftGeneratorFailureSurfacesSerially) {
  // Left fails from world 5 on; right never fails. The serial loop hits
  // the left failure first in world 5 on every path.
  ExpectSameErrorEverywhere(
      MakeFailingTable("flaky_left", 5), MakePlainRight("plain_right"),
      {"k", "k2"}, {"v", "v2"},
      "VG generator 'flaky_left' failed in world 5");
}

TEST_F(JoinErrorTest, RightGeneratorFailureSurfacesSerially) {
  // Right fails from world 3 on while left keeps succeeding: the serial
  // order realizes left world 3 then right world 3, so the surfaced
  // error is the right side's — including on the interleaved columnar
  // realization path.
  auto plain_left = MakeFailingTable("plain_left", kWorlds + 1);
  Schema rschema({{"k2", ValueType::kInt}, {"v2", ValueType::kDouble}});
  auto flaky_right = std::make_shared<KeyedVGTable>(
      "flaky_right", rschema, [](std::size_t w, Table* out) -> Status {
        if (w >= 3) {
          return Status::ExecutionError(
              StrFormat("VG generator 'flaky_right' failed in world %zu", w));
        }
        for (std::size_t i = 0; i < 4; ++i) {
          JIGSAW_RETURN_IF_ERROR(
              out->AddRow({I(static_cast<std::int64_t>(i % 3)),
                           D(static_cast<double>(i))}));
        }
        return Status::OK();
      });
  ExpectSameErrorEverywhere(plain_left, flaky_right, {"k", "k2"},
                            {"v", "v2"},
                            "VG generator 'flaky_right' failed in world 3");
}

TEST_F(JoinErrorTest, EarlierLeftFailureWinsOverLaterRightFailure) {
  // Left fails from world 2, right from world 4: world 2's left
  // realization is the first serial failure.
  Schema rschema({{"k2", ValueType::kInt}, {"v2", ValueType::kDouble}});
  auto flaky_right = std::make_shared<KeyedVGTable>(
      "flaky_right", rschema, [](std::size_t w, Table* out) -> Status {
        if (w >= 4) {
          return Status::ExecutionError(
              StrFormat("VG generator 'flaky_right' failed in world %zu", w));
        }
        return out->AddRow({I(0), D(0.0)});
      });
  ExpectSameErrorEverywhere(MakeFailingTable("flaky_left", 2), flaky_right,
                            {"k", "k2"}, {"v", "v2"},
                            "VG generator 'flaky_left' failed in world 2");
}

TEST_F(JoinErrorTest, NonNumericAndUnknownFoldColumnsFailUpFront) {
  auto users = MakeUsersVGTable(8, 0.8, 5.0, 2.0);
  auto items = MakeScalingItemsVGTable(10);
  const JoinSpec keys{"user_id", "item_id"};
  ExpectSameErrorEverywhere(users, items, keys, {"region"},
                            "column 'region' is not numeric");
  ExpectSameErrorEverywhere(users, items, keys, {"no_such_column"},
                            "no column named 'no_such_column'");
}

TEST_F(JoinErrorTest, ResolveErrorsIdenticalOnEveryPath) {
  auto users = MakeUsersVGTable(8, 0.8, 5.0, 2.0);
  auto items = MakeScalingItemsVGTable(10);
  ExpectSameErrorEverywhere(
      users, items, {"user_id", "region"}, {"cost"},
      "join keys 'user_id' (INT) and 'region' (STRING) have mismatched "
      "types");
  ExpectSameErrorEverywhere(users, users, {"user_id", "user_id"},
                            {"requirement"},
                            "duplicate column 'user_id' in join output");
}

}  // namespace
}  // namespace jigsaw::pdb
