// End-to-end integration tests. The central invariant is the paper's
// Section 6.2 accuracy claim: "outputs of Jigsaw are equivalent to full
// simulation for each possible parameter value" — we run whole scenarios
// twice (fingerprinting on/off) and require matching decisions and
// metrics wherever exact linear mappings hold.

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "core/sim_runner.h"
#include "interactive/interactive_session.h"
#include "models/cloud_models.h"
#include "sql/chain_process.h"
#include "sql/script_runner.h"

namespace jigsaw {
namespace {

constexpr const char* kFigure1Small = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 24 STEP BY 2;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 16 STEP BY 8;
DECLARE PARAMETER @feature_release AS SET (12,36);
SELECT DemandModel(@current_week, @feature_release) AS demand,
       CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.01
GROUP BY feature_release, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2
)";

RunConfig TestConfig(bool fingerprints) {
  RunConfig cfg;
  cfg.num_samples = 400;
  cfg.fingerprint_size = 10;
  cfg.use_fingerprints = fingerprints;
  return cfg;
}

TEST(IntegrationTest, Figure1JigsawAndNaiveSelectSameOptimum) {
  ModelRegistry registry;
  ASSERT_TRUE(RegisterCloudModels(&registry).ok());

  sql::ScriptRunner fast(&registry, TestConfig(true));
  sql::ScriptRunner slow(&registry, TestConfig(false));
  auto a = fast.Run(kFigure1Small);
  auto b = slow.Run(kFigure1Small);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(a.value().optimize.has_value());
  ASSERT_TRUE(b.value().optimize.has_value());

  const auto& fast_opt = *a.value().optimize;
  const auto& slow_opt = *b.value().optimize;
  EXPECT_EQ(fast_opt.found, slow_opt.found);
  if (fast_opt.found) {
    EXPECT_EQ(fast_opt.best_valuation, slow_opt.best_valuation);
  }
  // Group-level feasibility decisions must agree everywhere.
  ASSERT_EQ(fast_opt.groups.size(), slow_opt.groups.size());
  for (std::size_t g = 0; g < fast_opt.groups.size(); ++g) {
    EXPECT_EQ(fast_opt.groups[g].feasible, slow_opt.groups[g].feasible)
        << "group " << g;
  }
  // And the accelerated run must actually have reused work.
  EXPECT_GT(a.value().runner_stats.points_reused, 0u);
  EXPECT_LT(a.value().runner_stats.blackbox_invocations,
            b.value().runner_stats.blackbox_invocations);
}

TEST(IntegrationTest, DemandSweepMetricsMatchNaivePointwise) {
  // Where a linear mapping exists, reused metrics are *exact* (linearity
  // of expectation), not merely statistically close.
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);

  SimulationRunner fast(TestConfig(true));
  SimulationRunner slow(TestConfig(false));

  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 40, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());

  const auto fast_results = fast.RunSweep(fn, space);
  const auto slow_results = slow.RunSweep(fn, space);
  ASSERT_EQ(fast_results.size(), slow_results.size());
  for (std::size_t i = 0; i < fast_results.size(); ++i) {
    const auto& fm = fast_results[i].metrics;
    const auto& sm = slow_results[i].metrics;
    EXPECT_NEAR(fm.mean, sm.mean, 1e-7 * (1 + std::fabs(sm.mean)))
        << "point " << i;
    EXPECT_NEAR(fm.stddev, sm.stddev, 1e-7 * (1 + sm.stddev)) << i;
    EXPECT_NEAR(fm.min, sm.min, 1e-7 * (1 + std::fabs(sm.min))) << i;
    EXPECT_NEAR(fm.max, sm.max, 1e-7 * (1 + std::fabs(sm.max))) << i;
  }
  // ~40 points served by very few bases.
  EXPECT_LE(fast.basis_store().size(), 4u);
}

TEST(IntegrationTest, CapacitySweepSharesBasesAcrossPurchaseDeltas) {
  // The Capacity insight of Section 6.2: points with the same
  // purchase-to-week deltas share a distribution, no matter when the
  // purchase happened. 'week 10 / purchase 6' must map onto
  // 'week 24 / purchase 20' (both are "4 weeks after one purchase").
  CloudModelConfig mcfg;
  auto model = MakeCapacityModel(mcfg);
  BlackBoxSimFunction fn(model);
  SimulationRunner runner(TestConfig(true));

  const auto r1 =
      runner.RunPoint(fn, std::vector<double>{10.0, 6.0, 50.0});
  const auto r2 =
      runner.RunPoint(fn, std::vector<double>{24.0, 20.0, 64.0});
  EXPECT_TRUE(r2.reused);
  EXPECT_EQ(r2.basis_id, r1.basis_id);
  EXPECT_TRUE(r2.mapping->IsIdentity());
}

TEST(IntegrationTest, SeedReuseDoesNotBiasComparisons) {
  // Section 6.2: "using same set of seeds for different parameter values
  // introduces correlated error terms ... but the Selector only compares,
  // and never combines". Verify the estimator outputs for two parameter
  // values are each individually unbiased against fresh-seed runs.
  CloudModelConfig mcfg;
  auto model = MakeDemandModel(mcfg);
  BlackBoxSimFunction fn(model);

  RunConfig shared_cfg = TestConfig(true);
  shared_cfg.num_samples = 3000;
  SimulationRunner shared(shared_cfg);
  RunConfig fresh_cfg = shared_cfg;
  fresh_cfg.master_seed = 0x0DDBA11;
  SimulationRunner fresh(fresh_cfg);

  for (double week : {10.0, 30.0}) {
    const std::vector<double> params = {week, 52.0};
    const double a = shared.RunPoint(fn, params).metrics.mean;
    const double b = fresh.RunPoint(fn, params).metrics.mean;
    // Both are Monte Carlo estimates of mean = week.
    EXPECT_NEAR(a, week, 0.25);
    EXPECT_NEAR(b, week, 0.25);
  }
}

TEST(IntegrationTest, ChainScenarioJumpSpeedupPreservesDecision) {
  ModelRegistry registry;
  ASSERT_TRUE(RegisterCloudModels(&registry).ok());
  const char* kChain = R"(
DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
DECLARE PARAMETER @release_week AS CHAIN release_week
  FROM @current_week : @current_week - 1 INITIAL VALUE 52;
SELECT CASE WHEN demand > 20 AND @current_week + 4 < @release_week
            THEN @current_week + 4 ELSE @release_week END AS release_week,
       demand
FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
INTO results;
)";
  auto bound = sql::ParseAndBind(kChain, registry);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  RunConfig cfg;
  cfg.num_samples = 500;
  cfg.fingerprint_size = 10;

  ChainRunStats naive_stats, jump_stats;
  auto naive = sql::RunChainScenario(bound.value(), "release_week", 40, cfg,
                                     false, &naive_stats);
  auto jump = sql::RunChainScenario(bound.value(), "release_week", 40, cfg,
                                    true, &jump_stats);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(jump.ok());
  // Release week settles near the crossing (~20) + 4 lead weeks.
  EXPECT_NEAR(naive.value().mean, jump.value().mean, 1.5);
  EXPECT_LT(jump_stats.step_invocations, naive_stats.step_invocations);
}

TEST(IntegrationTest, MonteCarloSweepPrimesInteractiveSession) {
  // MONTECARLO OVER @w -> InteractiveSession: the sweep's per-point
  // summaries prime the session's point states, so every swept point is
  // addressable (with the sweep's full support) from the very first tick.
  // The sweep's world ids are the session's sample ids — same master
  // seed, same scenario column — so ticks validate the imported draws
  // instead of rebinding.
  ModelRegistry registry;
  ASSERT_TRUE(RegisterCloudModels(&registry).ok());
  const char* kScript = R"(
DECLARE PARAMETER @w AS RANGE 10 TO 14 STEP BY 1;
SELECT DemandModel(@w, 52) AS demand INTO r;
MONTECARLO OVER @w;
)";
  RunConfig cfg;
  cfg.num_samples = 80;
  cfg.num_threads = 2;
  cfg.keep_samples = true;
  sql::ScriptRunner runner(&registry, cfg);
  auto outcome = runner.Run(kScript);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const auto& mc = outcome.value().montecarlo;
  ASSERT_TRUE(mc.has_value());
  ASSERT_EQ(mc->points.size(), 5u);

  InteractiveConfig icfg;
  icfg.run = cfg;
  ParameterSpace space = outcome.value().bound.scenario.params;
  InteractiveSession session(outcome.value().bound.scenario.columns[0].fn,
                             space, icfg);
  for (std::size_t point = 0; point < mc->points.size(); ++point) {
    ASSERT_TRUE(
        session.PrimeFromSweep(point,
                               mc->points[point].columns.at("demand"))
            .ok());
    const DisplayEstimate est = session.EstimateFor(point);
    ASSERT_TRUE(est.available) << "point " << point;
    EXPECT_EQ(est.support, 80);
    EXPECT_NEAR(est.mean, mc->points[point].columns.at("demand").mean,
                1e-9);
  }
  // Ticks refine on top: the imported draws are the session's own, so no
  // validation failure ever rebinds a primed point.
  ASSERT_TRUE(session.SetFocus(2).ok());
  session.Run(50);
  EXPECT_EQ(session.stats().rebinds, 0u);
  EXPECT_GE(session.EstimateFor(2).support, 80);
}

}  // namespace
}  // namespace jigsaw
