// Tests for Section 4: Markov processes, synthesized estimators, the
// naive chain runner and the MarkovJump algorithm (Algorithm 4).

#include <gtest/gtest.h>

#include <cmath>

#include "markov/chain_runner.h"
#include "markov/markov_models.h"

namespace jigsaw {
namespace {

RunConfig ChainConfig(std::size_t n = 200, std::size_t m = 10) {
  RunConfig cfg;
  cfg.num_samples = n;
  cfg.fingerprint_size = m;
  return cfg;
}

TEST(MarkovSaltTest, StepSaltsAreDistinct) {
  EXPECT_NE(MarkovStepSalt(1), MarkovStepSalt(2));
  EXPECT_NE(MarkovStepSalt(1), MarkovOutputSalt(1));
  EXPECT_EQ(MarkovStepSalt(9), MarkovStepSalt(9));
}

// ---------------------------------------------------------------------------
// DriftProcess: exact closed-form estimator, single-jump behaviour
// ---------------------------------------------------------------------------

TEST(MarkovJumpTest, DriftProcessJumpsToTargetInOnePass) {
  DriftProcess process(0.5);
  const std::int64_t target = 1000;

  MarkovJumpRunner jump(ChainConfig(500, 10));
  const ChainResult result = jump.Run(process, target);

  for (double s : result.final_states) {
    EXPECT_NEAR(s, 0.5 * target, 1e-9);
  }
  // Only fingerprint instances step honestly: far fewer than n*target.
  EXPECT_LT(result.stats.step_invocations, 500u * 100u);
  EXPECT_EQ(result.stats.mismatches, 0u);
  EXPECT_EQ(result.stats.full_rebuilds, 1u);
}

TEST(MarkovJumpTest, DriftMatchesNaiveExactly) {
  DriftProcess process(-1.25);
  NaiveChainRunner naive(ChainConfig(100, 10));
  MarkovJumpRunner jump(ChainConfig(100, 10));
  const auto a = naive.Run(process, 321);
  const auto b = jump.Run(process, 321);
  ASSERT_EQ(a.final_states.size(), b.final_states.size());
  for (std::size_t k = 0; k < a.final_states.size(); ++k) {
    EXPECT_NEAR(a.final_states[k], b.final_states[k], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// MarkovBranch: the Figure 12 synthetic
// ---------------------------------------------------------------------------

TEST(MarkovBranchTest, ZeroBranchingIsFullyJumpable) {
  MarkovBranchConfig mcfg;
  mcfg.branching = 0.0;
  MarkovBranchProcess process(mcfg);
  MarkovJumpRunner jump(ChainConfig(500, 10));
  const auto result = jump.Run(process, 128);
  for (double s : result.final_states) EXPECT_DOUBLE_EQ(s, 0.0);
  // Step invocations: only the m fingerprint instances walk the chain.
  EXPECT_LE(result.stats.step_invocations, 10u * 128u);
  EXPECT_EQ(result.stats.mismatches, 0u);
}

TEST(MarkovBranchTest, NaiveAndJumpAgreeOnFingerprintInstances) {
  // The fingerprint instances are stepped honestly by the jump runner, so
  // they must match the naive runner exactly regardless of branching.
  MarkovBranchConfig mcfg;
  mcfg.branching = 0.02;
  MarkovBranchProcess process(mcfg);
  NaiveChainRunner naive(ChainConfig(100, 10));
  MarkovJumpRunner jump(ChainConfig(100, 10));
  const auto a = naive.Run(process, 128);
  const auto b = jump.Run(process, 128);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(a.final_states[k], b.final_states[k]) << "instance " << k;
  }
}

TEST(MarkovBranchTest, StatesCountBranchEvents) {
  MarkovBranchConfig mcfg;
  mcfg.branching = 0.05;
  mcfg.state_jump = 1.0;
  MarkovBranchProcess process(mcfg);
  NaiveChainRunner naive(ChainConfig(2000, 10));
  const auto result = naive.Run(process, 100);
  double total = 0;
  for (double s : result.final_states) total += s;
  // E[state] = branching * steps = 5.
  EXPECT_NEAR(total / 2000, 5.0, 0.35);
}

TEST(MarkovBranchTest, HighBranchingForcesHonestStepping) {
  MarkovBranchConfig mcfg;
  mcfg.branching = 0.5;
  MarkovBranchProcess process(mcfg);
  MarkovJumpRunner jump(ChainConfig(100, 10));
  const auto result = jump.Run(process, 64);
  // Divergence on nearly every step: many mismatches, frequent fallback
  // to honest full-state stepping.
  EXPECT_GT(result.stats.mismatches, 10u);
  EXPECT_GT(result.stats.step_invocations, 64u * 10u);
}

TEST(MarkovBranchTest, JumpCostScalesWithBranching) {
  auto cost_at = [](double branching) {
    MarkovBranchConfig mcfg;
    mcfg.branching = branching;
    MarkovBranchProcess process(mcfg);
    MarkovJumpRunner jump(ChainConfig(300, 10));
    const auto result = jump.Run(process, 128);
    return result.stats.step_invocations + result.stats.estimator_invocations;
  };
  const auto low = cost_at(1e-4);
  const auto high = cost_at(0.2);
  EXPECT_LT(low * 3, high);  // strongly increasing
}

// ---------------------------------------------------------------------------
// MarkovStep: the release-week / demand cyclic dependency (Figure 5)
// ---------------------------------------------------------------------------

TEST(MarkovStepTest, ReleasePullsInWhenDemandCrosses) {
  MarkovStepConfig mcfg;
  mcfg.demand_threshold = 10.0;  // crossed around week 10
  MarkovStepProcess process(mcfg);
  NaiveChainRunner naive(ChainConfig(500, 10));
  const auto result = naive.Run(process, 40);
  // By week 40 demand (mean = week) has crossed 10 in almost every
  // instance; the release moved from 52 to ~crossing+4.
  double moved = 0;
  for (double s : result.final_states) {
    if (s < 52.0) ++moved;
    EXPECT_GE(s, 0.0);
  }
  EXPECT_GT(moved / 500.0, 0.99);
}

TEST(MarkovStepTest, ReleaseStableBeforeThreshold) {
  MarkovStepConfig mcfg;
  mcfg.demand_threshold = 1000.0;  // never crossed in 40 weeks
  MarkovStepProcess process(mcfg);
  NaiveChainRunner naive(ChainConfig(200, 10));
  const auto result = naive.Run(process, 40);
  for (double s : result.final_states) EXPECT_DOUBLE_EQ(s, 52.0);
}

TEST(MarkovStepTest, JumpMatchesNaiveDistributionTails) {
  MarkovStepConfig mcfg;
  mcfg.demand_threshold = 15.0;
  MarkovStepProcess process(mcfg);
  const std::int64_t target = 60;

  NaiveChainRunner naive(ChainConfig(400, 10));
  MarkovJumpRunner jump(ChainConfig(400, 10));
  const auto a = naive.Run(process, target);
  const auto b = jump.Run(process, target);

  // Both runners' final release-week distributions must be close: compare
  // means (identical for fingerprint instances; estimator-mapped for the
  // rest — valid wherever the estimator was validated).
  double ma = 0, mb = 0;
  for (double s : a.final_states) ma += s;
  for (double s : b.final_states) mb += s;
  ma /= static_cast<double>(a.final_states.size());
  mb /= static_cast<double>(b.final_states.size());
  EXPECT_NEAR(ma, mb, 1.5);
}

TEST(MarkovStepTest, JumpIsCheaperThanNaiveOnQuietChains) {
  MarkovStepConfig mcfg;
  mcfg.demand_threshold = 26.0;
  MarkovStepProcess process(mcfg);
  const std::int64_t target = 100;

  NaiveChainRunner naive(ChainConfig(500, 10));
  MarkovJumpRunner jump(ChainConfig(500, 10));
  const auto a = naive.Run(process, target);
  const auto b = jump.Run(process, target);
  EXPECT_EQ(a.stats.step_invocations, 500u * 100u);
  const auto jump_cost =
      b.stats.step_invocations + b.stats.estimator_invocations;
  EXPECT_LT(jump_cost, a.stats.step_invocations / 2);
}

TEST(MarkovStepTest, OutputProducesDemandForecast) {
  MarkovStepConfig mcfg;
  MarkovStepProcess process(mcfg);
  RunConfig cfg = ChainConfig(300, 10);
  NaiveChainRunner naive(cfg);
  const auto result = naive.Run(process, 30);
  const OutputMetrics metrics =
      ChainOutputMetrics(process, result, 30, naive.seeds(), cfg);
  EXPECT_EQ(metrics.count, 300);
  // Demand at week 30 with release still at 52: mean ~ 30.
  EXPECT_NEAR(metrics.mean, 30.0, 2.5);
}

// ---------------------------------------------------------------------------
// Determinism across runners
// ---------------------------------------------------------------------------

TEST(ChainRunnerTest, NaiveIsDeterministic) {
  MarkovBranchConfig mcfg;
  mcfg.branching = 0.1;
  MarkovBranchProcess process(mcfg);
  NaiveChainRunner r1(ChainConfig(50, 5));
  NaiveChainRunner r2(ChainConfig(50, 5));
  const auto a = r1.Run(process, 30);
  const auto b = r2.Run(process, 30);
  EXPECT_EQ(a.final_states, b.final_states);
}

TEST(ChainRunnerTest, JumpIsDeterministic) {
  MarkovBranchConfig mcfg;
  mcfg.branching = 0.01;
  MarkovBranchProcess process(mcfg);
  MarkovJumpRunner r1(ChainConfig(50, 5));
  MarkovJumpRunner r2(ChainConfig(50, 5));
  const auto a = r1.Run(process, 64);
  const auto b = r2.Run(process, 64);
  EXPECT_EQ(a.final_states, b.final_states);
}

TEST(ChainRunnerTest, ZeroTargetReturnsInitialStates) {
  DriftProcess process(1.0);
  NaiveChainRunner naive(ChainConfig(10, 5));
  MarkovJumpRunner jump(ChainConfig(10, 5));
  for (double s : naive.Run(process, 0).final_states) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
  for (double s : jump.Run(process, 0).final_states) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(ChainRunnerTest, SingleStepTarget) {
  DriftProcess process(2.0);
  MarkovJumpRunner jump(ChainConfig(20, 5));
  const auto result = jump.Run(process, 1);
  for (double s : result.final_states) EXPECT_NEAR(s, 2.0, 1e-12);
}

}  // namespace
}  // namespace jigsaw
