// Tests for the worker pool underpinning parallel sample evaluation and
// the parallel sweep: ParallelFor index coverage, WaitIdle blocking
// semantics, and clean shutdown while producers are still submitting.
//
// ---------------------------------------------------------------------------
// Negative-compile reference: what the thread-safety annotations reject
// ---------------------------------------------------------------------------
// ThreadPool's queue_, in_flight_ and stop_ are JIGSAW_GUARDED_BY(mu_), and
// the ParallelFor per-call Completion::pending is guarded by its per-call
// mutex. Under the clang-analysis CI job (-Wthread-safety
// -Werror=thread-safety) each of the following — the bug classes TSan can
// only catch probabilistically — is a BUILD BREAK, not a test flake. They
// are kept here as comments because a positive build must stay green; to
// reproduce a rejection, paste one into thread_pool.cc and build with
// clang.
//
//   // (a) Unguarded read of a guarded field: "reading variable 'in_flight_'
//   //     requires holding mutex 'mu_'"
//   std::size_t ThreadPool::Depth() { return in_flight_; }
//
//   // (b) Forgotten unlock on an early return: "mutex 'mu_' is still held
//   //     at the end of function" (manual Lock without the MutexLock scope)
//   void ThreadPool::Broken() { mu_.Lock(); if (stop_) return; mu_.Unlock(); }
//
//   // (c) Waiting on a condition variable without its mutex: CondVar::Wait
//   //     is JIGSAW_REQUIRES(mu) — "calling function 'Wait' requires
//   //     holding mutex 'mu_' exclusively"
//   void ThreadPool::BadWait() { cv_idle_.Wait(&mu_); }
//
//   // (d) Calling a JIGSAW_EXCLUDES(mu_) method with mu_ held (the
//   //     self-deadlock shape: Submit inside a locked scope): "cannot call
//   //     function 'Submit' while mutex 'mu_' is held"
//   void ThreadPool::Reenter() { MutexLock l(&mu_); Submit([] {}); }
//
//   // (e) Touching another call's completion state without its lock:
//   //     "reading variable 'pending' requires holding mutex 'done.mu'"
//   ... inside ParallelFor: if (done.pending == 0) return;  // before lock
// ---------------------------------------------------------------------------

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_pool.h"

namespace jigsaw {
namespace {

// The annotated primitives must behave exactly like the raw std types
// they wrap: Mutex provides mutual exclusion, MutexLock scopes it,
// CondVar::Wait releases/reacquires, MutexLockMaybe disengages cleanly.
TEST(AnnotatedMutexTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter = 0;  // guarded by mu by convention (local: not annotatable)
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, 4000);
}

TEST(AnnotatedMutexTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    // If Wait failed to release mu, the signaller could never set ready
    // and this would deadlock (caught by the 300s CTest timeout).
    while (!ready) cv.Wait(&mu);
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(AnnotatedMutexTest, MutexLockMaybeDisengagedLeavesMutexFree) {
  Mutex mu;
  {
    MutexLockMaybe lock(&mu, /*enabled=*/false);
    // Disengaged: the mutex must still be acquirable (no self-deadlock).
    EXPECT_TRUE(mu.TryLock());
    mu.Unlock();
  }
  {
    MutexLockMaybe lock(&mu, /*enabled=*/true);
    // try_lock from the owning thread is UB on std::mutex, so probe from
    // a second thread: it must see the mutex held.
    bool acquired = true;
    std::thread probe([&mu, &acquired] {
      acquired = mu.TryLock();
      if (acquired) mu.Unlock();
    });
    probe.join();
    EXPECT_FALSE(acquired);
  }
  // Engaged scope released on destruction.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(8);
  std::atomic<std::size_t> calls{0};
  pool.ParallelFor(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1u);
  // Fewer indices than threads: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForIsReentrantAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilSubmittedWorkFinishes) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1, std::memory_order_release);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(std::memory_order_acquire), 8);
}

TEST(ThreadPoolTest, WaitIdleReturnsImmediatelyWhenIdle) {
  ThreadPool pool(2);
  pool.WaitIdle();  // nothing submitted: must not deadlock
  pool.Submit([] {});
  pool.WaitIdle();
  pool.WaitIdle();  // idempotent after drain
}

TEST(ThreadPoolTest, DestructorDrainsQueueWithoutDeadlock) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here with tasks still queued.
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllExecute) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&pool, &executed] {
        for (int i = 0; i < 200; ++i) {
          pool.Submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    for (auto& t : producers) t.join();
    pool.WaitIdle();
    EXPECT_EQ(executed.load(), 800);
  }
  EXPECT_EQ(executed.load(), 800);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersCompleteIndependently) {
  // The serving layer's contract: many client threads issue ParallelFor
  // on ONE shared pool, and each call returns exactly when ITS items are
  // done — never waiting on (or racing with) a sibling's in-flight work.
  constexpr int kCallers = 8;
  constexpr std::size_t kItems = 257;  // straddles chunk boundaries
  constexpr int kRounds = 5;
  ThreadPool pool(4);
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kItems);
  std::vector<std::thread> callers;
  // NOT vector<bool>: packed bits share words across callers (data race).
  std::vector<std::atomic<bool>> complete_on_return(kCallers);
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      bool complete = true;
      for (int round = 0; round < kRounds; ++round) {
        pool.ParallelFor(kItems, [&, c](std::size_t i) {
          hits[c][i].fetch_add(1, std::memory_order_relaxed);
        });
        // Per-call completion: after ParallelFor returns, every one of
        // THIS caller's items for this round must have run.
        for (std::size_t i = 0; i < kItems; ++i) {
          if (hits[c][i].load(std::memory_order_relaxed) < round + 1) {
            complete = false;
          }
        }
      }
      complete_on_return[c].store(complete, std::memory_order_relaxed);
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(complete_on_return[c]) << "caller " << c;
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(hits[c][i].load(), kRounds)
          << "caller " << c << " item " << i;
    }
  }
}

}  // namespace
}  // namespace jigsaw
