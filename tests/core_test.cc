// Tests for the fingerprint core: fingerprint computation, Algorithm 2
// (FindLinearMapping), the mapping-class abstraction, the three index
// strategies of Section 3.2 and the basis store (Algorithm 3).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/basis_store.h"
#include "core/fingerprint.h"
#include "core/fingerprint_index.h"
#include "core/mapping.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/sim_function.h"
#include "models/cloud_models.h"
#include "random/splitmix64.h"

namespace jigsaw {
namespace {

constexpr double kTol = 1e-9;

Fingerprint FP(std::vector<double> v) { return Fingerprint(std::move(v)); }

// ---------------------------------------------------------------------------
// Fingerprint basics
// ---------------------------------------------------------------------------

TEST(FingerprintTest, FirstTwoDistinctFindsPair) {
  const auto d = FP({1.0, 1.0, 2.0, 3.0}).FirstTwoDistinct(kTol);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->first, 0u);
  EXPECT_EQ(d->second, 2u);
}

TEST(FingerprintTest, ConstantHasNoDistinctPair) {
  EXPECT_TRUE(FP({5.0, 5.0, 5.0}).IsConstant(kTol));
  EXPECT_FALSE(FP({5.0, 5.0, 5.1}).IsConstant(kTol));
  EXPECT_TRUE(FP({5.0}).IsConstant(kTol));
  EXPECT_TRUE(FP({}).IsConstant(kTol));
}

TEST(FingerprintTest, ComputeIsDeterministicAndUsesFirstSeeds) {
  CloudModelConfig cfg;
  auto model = MakeDemandModel(cfg);
  BlackBoxSimFunction fn(model);
  SeedVector seeds(123, 100);
  const std::vector<double> params = {10.0, 52.0};
  Fingerprint a = ComputeFingerprint(fn, params, seeds, 10);
  Fingerprint b = ComputeFingerprint(fn, params, seeds, 10);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a[i], b[i]);
  // The k'th entry is exactly sample k.
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(a[k], fn.Sample(params, k, seeds));
  }
}

// ---------------------------------------------------------------------------
// FindLinearMapping (Algorithm 2)
// ---------------------------------------------------------------------------

TEST(LinearMappingTest, RecoversExactAffineMap) {
  const Fingerprint theta1 = FP({0.0, 1.2, 2.3, 1.3, 1.5});
  const Fingerprint theta2 = FP({0.1, 1.3, 2.4, 1.4, 1.6});
  MappingPtr m = FindLinearMapping(theta1, theta2, kTol);
  ASSERT_NE(m, nullptr);  // the paper's own example: M(x) = x + 0.1
  auto affine = m->AsAffine();
  ASSERT_TRUE(affine.has_value());
  EXPECT_NEAR(affine->first, 1.0, 1e-12);
  EXPECT_NEAR(affine->second, 0.1, 1e-12);
}

TEST(LinearMappingTest, PropertySweepRandomAffineMaps) {
  // For random theta and random (alpha, beta), the mapping must be
  // recovered and must invert correctly.
  SplitMix64 rng(2024);
  auto u = [&rng] {
    return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> base(10);
    for (auto& x : base) x = u() * 20 - 10;
    const double alpha = (u() - 0.5) * 6 + 0.01;
    const double beta = (u() - 0.5) * 40;
    std::vector<double> mapped;
    for (double x : base) mapped.push_back(alpha * x + beta);
    MappingPtr m = FindLinearMapping(FP(base), FP(mapped), kTol);
    ASSERT_NE(m, nullptr) << "trial " << trial;
    for (double x : base) {
      EXPECT_NEAR(m->Apply(x), alpha * x + beta, 1e-6);
    }
    if (m->Invertible()) {
      for (double x : base) {
        EXPECT_NEAR(m->Invert(m->Apply(x)), x, 1e-6);
      }
    }
  }
}

TEST(LinearMappingTest, RejectsNonLinearRelation) {
  const Fingerprint theta1 = FP({1.0, 2.0, 3.0, 4.0});
  const Fingerprint theta2 = FP({1.0, 4.0, 9.0, 16.0});  // squares
  EXPECT_EQ(FindLinearMapping(theta1, theta2, kTol), nullptr);
}

TEST(LinearMappingTest, RejectsSizeMismatchAndEmpty) {
  EXPECT_EQ(FindLinearMapping(FP({1, 2}), FP({1, 2, 3}), kTol), nullptr);
  EXPECT_EQ(FindLinearMapping(FP({}), FP({}), kTol), nullptr);
}

TEST(LinearMappingTest, ConstantToConstantIsTranslation) {
  MappingPtr m = FindLinearMapping(FP({2, 2, 2}), FP({5, 5, 5}), kTol);
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->Apply(2.0), 5.0);
  EXPECT_DOUBLE_EQ(m->Apply(10.0), 13.0);  // translation by 3
}

TEST(LinearMappingTest, ConstantToVaryingHasNoMapping) {
  EXPECT_EQ(FindLinearMapping(FP({2, 2, 2}), FP({1, 2, 3}), kTol), nullptr);
}

TEST(LinearMappingTest, VaryingToConstantIsDegenerateAlphaZero) {
  MappingPtr m = FindLinearMapping(FP({1, 2, 3}), FP({7, 7, 7}), kTol);
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(m->Invertible());
  EXPECT_DOUBLE_EQ(m->Apply(100.0), 7.0);
}

TEST(LinearMappingTest, IdentityIsCanonicalized) {
  MappingPtr m = FindLinearMapping(FP({1, 2, 3}), FP({1, 2, 3}), kTol);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->IsIdentity());
}

TEST(LinearMappingTest, NegativeAlphaSupported) {
  MappingPtr m = FindLinearMapping(FP({0, 1, 2, 5}), FP({3, 1, -1, -7}), kTol);
  ASSERT_NE(m, nullptr);
  auto affine = m->AsAffine();
  ASSERT_TRUE(affine);
  EXPECT_NEAR(affine->first, -2.0, 1e-12);
  EXPECT_NEAR(affine->second, 3.0, 1e-12);
}

TEST(LinearMappingTest, ToleranceRejectsNearMisses) {
  const Fingerprint theta1 = FP({0.0, 1.0, 2.0, 3.0});
  const Fingerprint theta2 = FP({0.0, 1.0, 2.0, 3.01});
  EXPECT_EQ(FindLinearMapping(theta1, theta2, kTol), nullptr);
  // A looser tolerance accepts it.
  EXPECT_NE(FindLinearMapping(theta1, theta2, 1e-2), nullptr);
}

TEST(MappingTest, IdentitySingleton) {
  EXPECT_TRUE(IdentityMapping::Make()->IsIdentity());
  EXPECT_DOUBLE_EQ(IdentityMapping::Make()->Apply(3.5), 3.5);
  EXPECT_DOUBLE_EQ(IdentityMapping::Make()->Invert(3.5), 3.5);
}

TEST(MappingTest, LinearToStringReadable) {
  LinearMapping m(2.0, -1.0);
  EXPECT_EQ(m.ToString(), "M(x) = 2*x + -1");
}

// ---------------------------------------------------------------------------
// Normal forms & indexes (Section 3.2)
// ---------------------------------------------------------------------------

TEST(NormalFormTest, InvariantUnderAffineMaps) {
  auto finder = LinearMappingFinder::Make();
  SplitMix64 rng(31337);
  auto u = [&rng] {
    return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
  };
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> base(10);
    for (auto& x : base) x = u() * 10 - 5;
    const double alpha = (trial % 2 == 0 ? 1 : -1) * (u() * 3 + 0.1);
    const double beta = u() * 8 - 4;
    std::vector<double> mapped;
    for (double x : base) mapped.push_back(alpha * x + beta);
    auto nf1 = finder->NormalForm(FP(base), kTol, 1e-6);
    auto nf2 = finder->NormalForm(FP(mapped), kTol, 1e-6);
    ASSERT_TRUE(nf1 && nf2);
    EXPECT_EQ(*nf1, *nf2) << "trial " << trial << " alpha=" << alpha;
  }
}

TEST(NormalFormTest, DistinguishesUnrelatedFingerprints) {
  auto finder = LinearMappingFinder::Make();
  auto nf1 = finder->NormalForm(FP({0, 1, 2, 3}), kTol, 1e-6);
  auto nf2 = finder->NormalForm(FP({0, 1, 4, 9}), kTol, 1e-6);
  EXPECT_NE(*nf1, *nf2);
}

TEST(NormalFormTest, AllConstantsShareABucket) {
  auto finder = LinearMappingFinder::Make();
  auto nf1 = finder->NormalForm(FP({3, 3, 3}), kTol, 1e-6);
  auto nf2 = finder->NormalForm(FP({-8, -8, -8}), kTol, 1e-6);
  EXPECT_EQ(*nf1, *nf2);
}

TEST(SortedSidTest, InvariantUnderMonotoneIncreasingMaps) {
  const Fingerprint base = FP({3.0, -1.0, 7.5, 0.2, 4.4});
  std::vector<double> mapped;
  for (double x : base.values()) mapped.push_back(std::exp(0.3 * x));  // monotone
  EXPECT_EQ(SortedSidKey(base), SortedSidKey(FP(mapped)));
}

TEST(SortedSidTest, ReversedUnderMonotoneDecreasingMaps) {
  const Fingerprint base = FP({3.0, -1.0, 7.5, 0.2, 4.4});
  std::vector<double> mapped;
  for (double x : base.values()) mapped.push_back(-2.0 * x + 1.0);
  auto key = SortedSidKey(base);
  auto rkey = SortedSidKey(FP(mapped));
  std::reverse(rkey.begin(), rkey.end());
  EXPECT_EQ(key, rkey);
}

class IndexKindTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexKindTest, CandidatesAreSupersetOfTrueMatches) {
  // Property: for any probe, the candidate set must contain every basis
  // with a valid linear mapping (Array is the oracle by construction).
  auto finder = LinearMappingFinder::Make();
  auto index = MakeFingerprintIndex(GetParam(), finder, kTol, 1e-6);

  SplitMix64 rng(777);
  auto u = [&rng] {
    return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
  };
  // 8 base shapes; 5 affine variants each.
  std::vector<Fingerprint> all;
  for (int shape = 0; shape < 8; ++shape) {
    std::vector<double> base(10);
    for (auto& x : base) x = u() * 10 - 5;
    for (int variant = 0; variant < 5; ++variant) {
      const double alpha = u() * 4 + 0.2;
      const double beta = u() * 10 - 5;
      std::vector<double> v;
      for (double x : base) v.push_back(alpha * x + beta);
      all.push_back(FP(v));
    }
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    index->Insert(static_cast<BasisId>(i), all[i]);
  }

  std::vector<BasisId> candidates;
  for (std::size_t probe = 0; probe < all.size(); ++probe) {
    index->GetCandidates(all[probe], &candidates);
    for (std::size_t b = 0; b < all.size(); ++b) {
      if (finder->Find(all[b], all[probe], kTol) != nullptr) {
        EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                            static_cast<BasisId>(b)),
                  candidates.end())
            << IndexKindName(GetParam()) << ": probe " << probe
            << " missing true match " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexKindTest,
                         ::testing::Values(IndexKind::kArray,
                                           IndexKind::kNormalization,
                                           IndexKind::kSortedSid),
                         [](const auto& info) {
                           return IndexKindName(info.param);
                         });

TEST(IndexTest, NormalizationPrunesUnrelatedShapes) {
  auto finder = LinearMappingFinder::Make();
  auto index =
      MakeFingerprintIndex(IndexKind::kNormalization, finder, kTol, 1e-6);
  index->Insert(0, FP({0, 1, 2, 3, 4}));
  index->Insert(1, FP({0, 1, 4, 9, 16}));
  index->Insert(2, FP({5, 7, 9, 11, 13}));  // affine image of basis 0
  std::vector<BasisId> candidates;
  index->GetCandidates(FP({0, 2, 4, 6, 8}), &candidates);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
            candidates.end());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 2u),
            candidates.end());
  EXPECT_EQ(std::find(candidates.begin(), candidates.end(), 1u),
            candidates.end());
}

TEST(IndexTest, ArrayReturnsEverything) {
  auto finder = LinearMappingFinder::Make();
  auto index = MakeFingerprintIndex(IndexKind::kArray, finder, kTol, 1e-6);
  index->Insert(0, FP({1, 2}));
  index->Insert(1, FP({3, 4}));
  std::vector<BasisId> candidates;
  index->GetCandidates(FP({9, 9}), &candidates);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(IndexTest, SortedSidReturnsBasisForDecreasingMapProbe) {
  // A monotone *decreasing* map reverses the sorted-SID permutation; the
  // index must still return the basis by probing the reversed key
  // ("comparing both the SID sequence and its inverse", Section 3.2).
  auto finder = LinearMappingFinder::Make();
  auto index = MakeFingerprintIndex(IndexKind::kSortedSid, finder, kTol, 1e-6);
  const Fingerprint basis = FP({3.0, -1.0, 7.5, 0.2, 4.4});
  index->Insert(0, basis);

  std::vector<double> probe_vals;
  for (double x : basis.values()) probe_vals.push_back(-2.0 * x + 1.0);
  const Fingerprint probe = FP(probe_vals);
  ASSERT_NE(finder->Find(basis, probe, kTol), nullptr)
      << "precondition: the decreasing map is in the linear class";

  std::vector<BasisId> candidates;
  index->GetCandidates(probe, &candidates);
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
            candidates.end())
      << "reversed-permutation probe must surface the basis";
}

TEST(IndexTest, DecreasingMapProbeParityAcrossIndexKinds) {
  // Array (trivially) and Normalization (alpha < 0 is in the linear
  // class's normal form) must agree with SortedSID on the decreasing-map
  // probe: all three return the basis as a candidate.
  auto finder = LinearMappingFinder::Make();
  const Fingerprint basis = FP({3.0, -1.0, 7.5, 0.2, 4.4});
  std::vector<double> probe_vals;
  for (double x : basis.values()) probe_vals.push_back(-0.5 * x - 2.0);
  const Fingerprint probe = FP(probe_vals);

  for (IndexKind kind : {IndexKind::kArray, IndexKind::kNormalization,
                         IndexKind::kSortedSid}) {
    auto index = MakeFingerprintIndex(kind, finder, kTol, 1e-6);
    index->Insert(0, basis);
    std::vector<BasisId> candidates;
    index->GetCandidates(probe, &candidates);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), 0u),
              candidates.end())
        << IndexKindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Metrics & M_est (Section 3's derived mapping on aggregates)
// ---------------------------------------------------------------------------

TEST(MetricsTest, EstimatorComputesSummary) {
  Estimator est(/*keep_samples=*/true, /*histogram_bins=*/10);
  for (int i = 1; i <= 100; ++i) est.Add(static_cast<double>(i));
  OutputMetrics m = est.Finalize();
  EXPECT_EQ(m.count, 100);
  EXPECT_DOUBLE_EQ(m.mean, 50.5);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 100.0);
  EXPECT_NEAR(m.p50, 50.5, 0.01);
  EXPECT_NEAR(m.p95, 95.05, 0.01);
  ASSERT_TRUE(m.histogram.has_value());
  EXPECT_EQ(m.samples.size(), 100u);
}

TEST(MetricsTest, MappedMetricsEqualRecomputedMetrics) {
  // Property: mapping cached metrics == recomputing metrics on mapped
  // samples, for affine maps (this is the exactness claim behind reuse).
  SplitMix64 rng(4242);
  auto u = [&rng] {
    return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
  };
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs(500);
    for (auto& x : xs) x = u() * 100 - 50;
    const double alpha = (trial % 3 == 0 ? -1 : 1) * (u() * 5 + 0.1);
    const double beta = u() * 20 - 10;
    OutputMetrics base = MetricsFromSamples(xs, true, 10);
    LinearMapping mapping(alpha, beta);
    auto mapped = base.MappedBy(mapping, 10);
    ASSERT_TRUE(mapped.has_value());

    std::vector<double> ys;
    for (double x : xs) ys.push_back(alpha * x + beta);
    OutputMetrics direct = MetricsFromSamples(ys, true, 10);

    EXPECT_NEAR(mapped->mean, direct.mean, 1e-9 * (1 + std::fabs(direct.mean)));
    EXPECT_NEAR(mapped->stddev, direct.stddev,
                1e-9 * (1 + direct.stddev));
    EXPECT_NEAR(mapped->min, direct.min, 1e-9 * (1 + std::fabs(direct.min)));
    EXPECT_NEAR(mapped->max, direct.max, 1e-9 * (1 + std::fabs(direct.max)));
    EXPECT_EQ(mapped->count, direct.count);
  }
}

TEST(MetricsTest, MappedSamplesTransformElementwise) {
  OutputMetrics base = MetricsFromSamples({1, 2, 3}, true, 4);
  auto mapped = base.MappedBy(LinearMapping(2.0, 1.0), 4);
  ASSERT_TRUE(mapped.has_value());
  ASSERT_EQ(mapped->samples.size(), 3u);
  EXPECT_DOUBLE_EQ(mapped->samples[0], 3.0);
  EXPECT_DOUBLE_EQ(mapped->samples[2], 7.0);
}

TEST(MetricsTest, ExtractMetricQuantilesOnSingleSample) {
  const OutputMetrics m = MetricsFromSamples({4.25}, false, 4);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kMedian), 4.25);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kP95), 4.25);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kMin), 4.25);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kMax), 4.25);
}

TEST(MetricsTest, ExtractMetricQuantilesOnTwoSamples) {
  // QuantileSorted interpolates between closest ranks: with two samples
  // the q-quantile sits at position q along [s0, s1].
  const OutputMetrics m = MetricsFromSamples({10.0, 20.0}, false, 4);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kMedian), 15.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kP95),
                   10.0 * 0.05 + 20.0 * 0.95);
}

TEST(MetricsTest, ExtractMetricQuantilesOnThreeSamples) {
  // Unsorted input; position for q is q * (n - 1) = 2q.
  const OutputMetrics m = MetricsFromSamples({30.0, 10.0, 20.0}, false, 4);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kMedian), 20.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(m, MetricSelector::kP95),
                   20.0 * 0.1 + 30.0 * 0.9);
}

TEST(MetricsTest, AddSpanMatchesElementwiseAddBitForBit) {
  // The batched engine's correctness contract: folding whole spans must
  // be indistinguishable — to the last bit — from per-sample Add.
  SplitMix64 rng(31337);
  std::vector<double> xs(1000);
  for (auto& x : xs) {
    x = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53 * 200.0 - 100.0;
  }
  Estimator scalar(/*keep_samples=*/true, /*histogram_bins=*/10);
  for (double x : xs) scalar.Add(x);
  Estimator spans(/*keep_samples=*/true, /*histogram_bins=*/10);
  // Ragged chunking, including empty and single-element spans.
  std::size_t i = 0;
  for (std::size_t len : {0u, 1u, 7u, 64u}) {
    spans.AddSpan(std::span<const double>(xs.data() + i, len));
    i += len;
  }
  spans.AddSpan(std::span<const double>(xs.data() + i, xs.size() - i));

  const OutputMetrics a = scalar.Finalize();
  const OutputMetrics b = spans.Finalize();
  auto bits = [](double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof u);
    return u;
  };
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(bits(a.mean), bits(b.mean));
  EXPECT_EQ(bits(a.stddev), bits(b.stddev));
  EXPECT_EQ(bits(a.std_error), bits(b.std_error));
  EXPECT_EQ(bits(a.min), bits(b.min));
  EXPECT_EQ(bits(a.max), bits(b.max));
  EXPECT_EQ(bits(a.p50), bits(b.p50));
  EXPECT_EQ(bits(a.p95), bits(b.p95));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t k = 0; k < a.samples.size(); ++k) {
    ASSERT_EQ(bits(a.samples[k]), bits(b.samples[k])) << "sample " << k;
  }
}

TEST(MetricsTest, WelfordMergeMatchesSequentialStatistics) {
  // Chan et al. pairwise merge is the parallel-reduction half of the
  // streaming accumulator: not bit-identical to sequential order, but
  // must agree to tight relative tolerance.
  std::vector<double> xs(512);
  SplitMix64 rng(99);
  for (auto& x : xs) {
    x = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53 * 10.0;
  }
  WelfordAccumulator seq;
  seq.AddSpan(xs);
  WelfordAccumulator left, right;
  left.AddSpan(std::span<const double>(xs.data(), 200));
  right.AddSpan(std::span<const double>(xs.data() + 200, xs.size() - 200));
  left.Merge(right);
  EXPECT_EQ(left.count(), seq.count());
  EXPECT_NEAR(left.mean(), seq.mean(), 1e-12 * std::fabs(seq.mean()) + 1e-15);
  EXPECT_NEAR(left.variance(), seq.variance(),
              1e-10 * seq.variance() + 1e-15);
  EXPECT_DOUBLE_EQ(left.min(), seq.min());
  EXPECT_DOUBLE_EQ(left.max(), seq.max());
}

// ---------------------------------------------------------------------------
// BasisStore (Algorithm 3)
// ---------------------------------------------------------------------------

TEST(BasisStoreTest, MissThenHit) {
  BasisStore store(LinearMappingFinder::Make(), IndexKind::kNormalization,
                   kTol, 1e-6);
  const Fingerprint fp1 = FP({0, 1, 2, 3});
  EXPECT_FALSE(store.FindMatch(fp1).has_value());
  store.Insert(fp1, MetricsFromSamples({0, 1, 2, 3}, false, 4));
  ASSERT_EQ(store.size(), 1u);

  // An affine image must now hit, with the correct mapping.
  const Fingerprint fp2 = FP({1, 3, 5, 7});  // 2x + 1
  auto match = store.FindMatch(fp2);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->basis_id, 0u);
  auto affine = match->mapping->AsAffine();
  ASSERT_TRUE(affine);
  EXPECT_NEAR(affine->first, 2.0, 1e-12);
  EXPECT_NEAR(affine->second, 1.0, 1e-12);

  const auto& stats = store.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(store.Get(0).reuse_count, 1u);
}

TEST(BasisStoreTest, UnrelatedShapesCreateSeparateBases) {
  BasisStore store(LinearMappingFinder::Make(), IndexKind::kSortedSid, kTol,
                   1e-6);
  store.Insert(FP({0, 1, 2, 3}), {});
  store.Insert(FP({0, 1, 4, 9}), {});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.FindMatch(FP({3, 1, 0, 2})).has_value());
}

// Regression for the const-path locking fix (PR 8): size()/stats()/Get()
// used to read mutex-guarded state without the lock, so probing a shared
// thread-safe store while writers were active was a data race (TSan-
// visible once the annotations forced the accessors through mu_). Now the
// accessors lock on the thread-safe path, so concurrent readers observe
// consistent counters mid-run. Run under TSan to machine-check.
TEST(BasisStoreTest, AccessorsAreSafeDuringConcurrentWrites) {
  BasisStore store(LinearMappingFinder::Make(), IndexKind::kNormalization,
                   kTol, 1e-6, /*thread_safe=*/true);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 64;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, &go, w] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerWriter; ++i) {
        // Distinct quadratic shapes so every insert lands a new basis.
        const double a = 1.0 + w * kPerWriter + i;
        store.Insert(FP({0, a, 4 * a, 9 * a}), {});
        store.FindMatch(FP({0, a, 4 * a, 9 * a}));
      }
    });
  }
  threads.emplace_back([&store, &go] {
    while (!go.load(std::memory_order_acquire)) {
    }
    // Concurrent const-path reads: must be racefree and monotone.
    std::size_t last = 0;
    for (int i = 0; i < 200; ++i) {
      const std::size_t n = store.size();
      EXPECT_GE(n, last);
      last = n;
      const BasisStoreStats snap = store.stats();
      EXPECT_GE(snap.lookups, snap.hits);
      if (n > 0) store.Get(0);
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  const BasisStoreStats final_stats = store.stats();
  EXPECT_EQ(final_stats.lookups,
            static_cast<std::uint64_t>(kWriters * kPerWriter));
}

}  // namespace
}  // namespace jigsaw
