// Determinism guarantees the engine's correctness argument rests on:
// every generator is a pure function of its seed, sample streams derived
// from a SeedVector are reproducible and mutually independent, and
// nothing about evaluation order or thread scheduling can perturb the
// draws a given (sample, call-site) cell sees.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "random/draw_plane.h"
#include "random/philox.h"
#include "random/random_stream.h"
#include "random/seed_vector.h"
#include "random/splitmix64.h"
#include "random/xoshiro256.h"

namespace jigsaw {
namespace {

constexpr std::uint64_t kSeed = 0x5160534A00000001ULL;

// ---------------------------------------------------------------------------
// Engine-level reproducibility
// ---------------------------------------------------------------------------

TEST(SplitMix64Test, SameSeedSameSequence) {
  SplitMix64 a(kSeed), b(kSeed);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, KnownAnswerForSeedZero) {
  // Reference values from the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.Next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.Next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro256Test, SameSeedSameSequence) {
  Xoshiro256 a(kSeed), b(kSeed);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, JumpDecorrelatesStreams) {
  Xoshiro256 a(kSeed), b(kSeed);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.Next() == b.Next());
  EXPECT_EQ(equal, 0);
}

TEST(PhiloxTest, BlockIsPureFunctionOfCounterAndKey) {
  const Philox4x32::Counter ctr{1, 2, 3, 4};
  const Philox4x32::Key key{5, 6};
  EXPECT_EQ(Philox4x32::Block(ctr, key), Philox4x32::Block(ctr, key));
  // Single-bit counter change flips the output block.
  EXPECT_NE(Philox4x32::Block(ctr, key),
            Philox4x32::Block({1, 2, 3, 5}, key));
  EXPECT_NE(Philox4x32::Block(ctr, key), Philox4x32::Block(ctr, {5, 7}));
}

TEST(PhiloxTest, DeriveStreamSeedIsStableAndCallSiteSensitive) {
  const std::uint64_t s = DeriveStreamSeed(kSeed, 7);
  EXPECT_EQ(s, DeriveStreamSeed(kSeed, 7));
  EXPECT_NE(s, DeriveStreamSeed(kSeed, 8));
  EXPECT_NE(s, DeriveStreamSeed(kSeed + 1, 7));
}

// ---------------------------------------------------------------------------
// SeedVector stream reproducibility and independence
// ---------------------------------------------------------------------------

TEST(SeedVectorDeterminismTest, StreamsReproducibleFromFixedSeedVector) {
  SeedVector seeds(kSeed, 64);
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    RandomStream a = seeds.StreamFor(k, /*call_site=*/3);
    RandomStream b = seeds.StreamFor(k, /*call_site=*/3);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SeedVectorDeterminismTest, RebuiltVectorYieldsIdenticalStreams) {
  SeedVector first(kSeed, 32);
  SeedVector second(kSeed, 32);
  for (std::size_t k = 0; k < 32; ++k) {
    ASSERT_EQ(first.seed(k), second.seed(k));
    RandomStream a = first.StreamFor(k, 1);
    RandomStream b = second.StreamFor(k, 1);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SeedVectorDeterminismTest, SampleIndicesAreIndependent) {
  // Draining sample k's stream must not affect sample k+1's draws: each
  // stream is derived solely from (sigma_k, call_site), never from shared
  // sequential state.
  SeedVector seeds(kSeed, 8);

  RandomStream fresh = seeds.StreamFor(5, 0);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(fresh.NextUint64());

  for (std::size_t k = 0; k < 5; ++k) {
    RandomStream burn = seeds.StreamFor(k, 0);
    for (int i = 0; i < 1000; ++i) burn.NextUint64();
  }
  RandomStream after = seeds.StreamFor(5, 0);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(after.NextUint64(), expected[i]);
}

TEST(SeedVectorDeterminismTest, DistinctCellsGetDistinctStreams) {
  SeedVector seeds(kSeed, 16);
  std::set<std::uint64_t> firsts;
  for (std::size_t k = 0; k < 16; ++k) {
    for (std::uint64_t site = 0; site < 4; ++site) {
      firsts.insert(seeds.StreamFor(k, site).NextUint64());
    }
  }
  EXPECT_EQ(firsts.size(), 64u);  // no collisions across (k, site) cells
}

TEST(SeedVectorDeterminismTest, EnsureSizeDoesNotDisturbExistingSeeds) {
  SeedVector seeds(kSeed, 16);
  std::vector<std::uint64_t> before;
  for (std::size_t k = 0; k < 16; ++k) before.push_back(seeds.seed(k));
  seeds.EnsureSize(64);
  EXPECT_EQ(seeds.size(), 64u);
  for (std::size_t k = 0; k < 16; ++k) ASSERT_EQ(seeds.seed(k), before[k]);
}

TEST(SeedVectorDeterminismTest, EnsureSizeIsAppendStable) {
  // Entry k is always the k'th SplitMix64(master) output, no matter how
  // growth was chunked: a vector grown 4 -> 9 -> 64 is element-identical
  // to one constructed at 64 (interactive mode depends on this when it
  // lazily extends fingerprints).
  SeedVector grown(kSeed, 4);
  grown.EnsureSize(9);
  grown.EnsureSize(9);   // idempotent
  grown.EnsureSize(64);
  const SeedVector fresh(kSeed, 64);
  ASSERT_EQ(grown.size(), fresh.size());
  for (std::size_t k = 0; k < 64; ++k) {
    ASSERT_EQ(grown.seed(k), fresh.seed(k)) << "entry " << k;
  }
}

TEST(SeedVectorDeterminismTest, SeedSpanBoundsIncludeFullAndEmptyViews) {
  SeedVector seeds(kSeed, 16);
  EXPECT_EQ(seeds.seed_span(0, 16).size(), 16u);
  EXPECT_EQ(seeds.seed_span(16, 0).size(), 0u);
  EXPECT_EQ(seeds.seed_span(15, 1).front(), seeds.seed(15));
}

// ---------------------------------------------------------------------------
// Scheduling independence
// ---------------------------------------------------------------------------

TEST(SeedVectorDeterminismTest, ConcurrentDrawsMatchSerialDraws) {
  // Generate the same (sample, call-site) grid serially and from many
  // threads in scrambled order; the values must be bit-identical, which is
  // what lets RunSweep schedule points on any thread.
  constexpr std::size_t kSamples = 32;
  SeedVector seeds(kSeed, kSamples);

  std::vector<double> serial(kSamples);
  for (std::size_t k = 0; k < kSamples; ++k) {
    RandomStream s = seeds.StreamFor(k, 9);
    serial[k] = s.Gaussian() + s.Exponential(2.0) + s.NextDouble();
  }

  std::vector<double> threaded(kSamples);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      // Interleaved, reversed assignment: worker w handles k ≡ w (mod 4)
      // from the top down.
      for (std::size_t k = kSamples - 1 - static_cast<std::size_t>(w);
           k < kSamples; k -= 4) {
        RandomStream s = seeds.StreamFor(k, 9);
        threaded[k] = s.Gaussian() + s.Exponential(2.0) + s.NextDouble();
        if (k < 4) break;
      }
    });
  }
  for (auto& t : workers) t.join();

  for (std::size_t k = 0; k < kSamples; ++k) {
    std::uint64_t a, b;
    std::memcpy(&a, &serial[k], sizeof a);
    std::memcpy(&b, &threaded[k], sizeof b);
    ASSERT_EQ(a, b) << "sample " << k << " differs bitwise";
  }
}

// ---------------------------------------------------------------------------
// Schema v2: counter streams and draw planes
// ---------------------------------------------------------------------------

TEST(CounterStreamTest, PureFunctionOfKeyAndSample) {
  const std::uint64_t key = DrawKey(kSeed, 3);
  CounterStream a(key, 17), b(key, 17);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.NextWord(), b.NextWord());
  // Draining one sample's stream never perturbs a sibling's: there is no
  // shared state at all, only (key, sample, draw index).
  CounterStream drained(key, 16);
  for (int i = 0; i < 1000; ++i) drained.NextWord();
  CounterStream c(key, 17), d(key, 17);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(c.NextWord(), d.NextWord());
}

TEST(CounterStreamTest, DistinctCellsGetDistinctStreams) {
  std::set<std::uint32_t> firsts;
  for (std::size_t k = 0; k < 16; ++k) {
    for (std::uint64_t site = 0; site < 4; ++site) {
      firsts.insert(CounterStream(DrawKey(kSeed, site), k).NextWord());
    }
  }
  EXPECT_EQ(firsts.size(), 64u);
}

TEST(CounterStreamTest, AdjacentLanesShareABlock) {
  // Samples 4t..4t+3 at one draw index are the four words of a single
  // Philox block — the fact the plane kernels amortize on.
  const std::uint64_t key = DrawKey(kSeed, 0);
  const Philox4x32::Counter block = Philox4x32::Block(
      {2, 0, 0, 0}, {static_cast<std::uint32_t>(key),
                     static_cast<std::uint32_t>(key >> 32)});
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(CounterStream(key, 8 + lane).NextWord(), block[lane]);
  }
}

TEST(DrawPlaneTest, UniformPlaneMatchesCounterStreamEverywhere) {
  const std::uint64_t key = DrawKey(kSeed, 11);
  // Unaligned starts and sizes spanning partial head/tail groups.
  for (std::size_t k_begin : {0u, 1u, 2u, 3u, 5u}) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u}) {
      for (std::uint64_t draw : {0u, 1u, 6u}) {
        std::vector<double> plane(n);
        DrawSpan(plane, k_begin, key, draw);
        for (std::size_t i = 0; i < n; ++i) {
          CounterStream scalar(key, k_begin + i);
          for (std::uint64_t d = 0; d < draw; ++d) scalar.NextWord();
          ASSERT_EQ(plane[i], scalar.NextDouble())
              << "k_begin=" << k_begin << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(DrawPlaneTest, GaussianPlaneMatchesScalarStream) {
  const std::uint64_t key = DrawKey(kSeed, 4);
  for (std::size_t k_begin : {0u, 3u, 5u}) {
    std::vector<double> plane(9);
    GaussianPlane(plane, k_begin, key, /*draw_idx=*/2);
    for (std::size_t i = 0; i < plane.size(); ++i) {
      RandomStream scalar(CounterStream(key, k_begin + i));
      scalar.NextDouble();  // draws 0-1 belong to an earlier plane
      scalar.NextDouble();
      std::uint64_t a, b;
      const double want = scalar.Gaussian();
      std::memcpy(&a, &plane[i], sizeof a);
      std::memcpy(&b, &want, sizeof b);
      ASSERT_EQ(a, b) << "lane " << i;
    }
  }
}

TEST(DrawPlaneTest, ExponentialPlaneMatchesScalarStream) {
  const std::uint64_t key = DrawKey(kSeed, 9);
  for (std::size_t k_begin : {0u, 1u, 2u}) {
    std::vector<double> plane(7);
    ExponentialPlane(plane, k_begin, key, /*draw_idx=*/0, /*lambda=*/2.5);
    for (std::size_t i = 0; i < plane.size(); ++i) {
      RandomStream scalar(CounterStream(key, k_begin + i));
      std::uint64_t a, b;
      const double want = scalar.Exponential(2.5);
      std::memcpy(&a, &plane[i], sizeof a);
      std::memcpy(&b, &want, sizeof b);
      ASSERT_EQ(a, b) << "lane " << i;
    }
  }
}

TEST(DrawPlaneTest, SeedVectorStreamForMatchesCounterStream) {
  const SeedVector seeds(kSeed, 32, SeedSchema::kV2);
  for (std::size_t k : {0u, 1u, 7u, 31u}) {
    RandomStream via_vector = seeds.StreamFor(k, 5);
    CounterStream direct(DrawKey(kSeed, 5), k);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(via_vector.NextUint64(), direct.NextUint64());
    }
  }
}

// ---------------------------------------------------------------------------
// Frozen golden draws. These pin both schemas' exact derivations: any
// change to either sequence is a seed-schema break and must ship as a
// NEW schema version, never silently (the determinism contract's gate).
// ---------------------------------------------------------------------------

TEST(GoldenDrawTest, SchemaV1FirstDrawsAreFrozen) {
  const SeedVector seeds(kSeed, 8, SeedSchema::kV1);
  const struct {
    std::uint64_t site;
    std::size_t k;
    std::uint64_t want[4];
  } kGolden[] = {
      {0, 0, {0xE108ADAAF074F0B6ULL, 0x1E232F1423DB5025ULL,
              0xD8D19C3AD84D2B93ULL, 0x1E8CE63407EE3147ULL}},
      {0, 1, {0x61B509E179AE8A5BULL, 0xEFB421143E30F2AFULL,
              0x203C59D438A212E0ULL, 0xA73EA3C695697ED8ULL}},
      {0, 5, {0xF41375440240DB71ULL, 0x47843736944C1F62ULL,
              0x1E17C50EE590A7A6ULL, 0x6446229DB89CDD8CULL}},
      {7, 0, {0x85423F946D66D248ULL, 0x985EEE4AC5A2C46DULL,
              0x1185E40A2EB80B43ULL, 0x6C9742C101651287ULL}},
      {7, 2, {0x5ED4A3DFCB9555AEULL, 0x19B953392CB9DAA2ULL,
              0xDC096A50CEE42B39ULL, 0xDB703B75007F4177ULL}},
  };
  for (const auto& g : kGolden) {
    RandomStream s = seeds.StreamFor(g.k, g.site);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(s.NextUint64(), g.want[i])
          << "v1 site=" << g.site << " k=" << g.k << " draw " << i;
    }
  }
}

TEST(GoldenDrawTest, SchemaV2FirstWordsAreFrozen) {
  EXPECT_EQ(DrawKey(kSeed, 0), 0xDB948410E943DC1EULL);
  EXPECT_EQ(DrawKey(kSeed, 7), 0xB7473CACC085B079ULL);
  const struct {
    std::uint64_t site;
    std::size_t k;
    std::uint32_t want[6];
  } kGolden[] = {
      {0, 0, {0x7B256599u, 0x23621476u, 0xF3BE0099u,
              0x3AD36EFDu, 0x25007972u, 0xDEB4754Bu}},
      {0, 1, {0x82E5AA82u, 0x794DD74Du, 0x304C4776u,
              0xE637130Bu, 0x8F3934A0u, 0x0704EAD9u}},
      {0, 5, {0x9DF8988Eu, 0x5EBECB51u, 0x9DA97DC3u,
              0xB55D0DB1u, 0xB0D98228u, 0x0AB8C68Du}},
      {7, 0, {0xA15A2F0Bu, 0x31FAB88Bu, 0xC103265Cu,
              0x7523AFA0u, 0x36BADCB8u, 0x4F8A591Du}},
      {7, 2, {0xFE74C1D3u, 0x565D5F8Au, 0x7002F8F6u,
              0x0A87C437u, 0xB175AFEBu, 0x0E07BDE8u}},
  };
  for (const auto& g : kGolden) {
    CounterStream c(DrawKey(kSeed, g.site), g.k);
    for (int i = 0; i < 6; ++i) {
      ASSERT_EQ(c.NextWord(), g.want[i])
          << "v2 site=" << g.site << " k=" << g.k << " word " << i;
    }
  }
}

TEST(GoldenDrawTest, SchemasDivergeByConstruction) {
  // Canary: if v1 and v2 ever agree on a draw the gate has collapsed
  // (e.g. someone routed v2 through the v1 derivation "for compatibility").
  const SeedVector v1(kSeed, 8, SeedSchema::kV1);
  const SeedVector v2(kSeed, 8, SeedSchema::kV2);
  int equal = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    RandomStream a = v1.StreamFor(k, 0);
    RandomStream b = v2.StreamFor(k, 0);
    for (int i = 0; i < 8; ++i) equal += (a.NextUint64() == b.NextUint64());
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace jigsaw
