// Determinism guarantees the engine's correctness argument rests on:
// every generator is a pure function of its seed, sample streams derived
// from a SeedVector are reproducible and mutually independent, and
// nothing about evaluation order or thread scheduling can perturb the
// draws a given (sample, call-site) cell sees.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "random/philox.h"
#include "random/random_stream.h"
#include "random/seed_vector.h"
#include "random/splitmix64.h"
#include "random/xoshiro256.h"

namespace jigsaw {
namespace {

constexpr std::uint64_t kSeed = 0x5160534A00000001ULL;

// ---------------------------------------------------------------------------
// Engine-level reproducibility
// ---------------------------------------------------------------------------

TEST(SplitMix64Test, SameSeedSameSequence) {
  SplitMix64 a(kSeed), b(kSeed);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, KnownAnswerForSeedZero) {
  // Reference values from the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.Next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.Next(), 0x06C45D188009454FULL);
}

TEST(Xoshiro256Test, SameSeedSameSequence) {
  Xoshiro256 a(kSeed), b(kSeed);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, JumpDecorrelatesStreams) {
  Xoshiro256 a(kSeed), b(kSeed);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.Next() == b.Next());
  EXPECT_EQ(equal, 0);
}

TEST(PhiloxTest, BlockIsPureFunctionOfCounterAndKey) {
  const Philox4x32::Counter ctr{1, 2, 3, 4};
  const Philox4x32::Key key{5, 6};
  EXPECT_EQ(Philox4x32::Block(ctr, key), Philox4x32::Block(ctr, key));
  // Single-bit counter change flips the output block.
  EXPECT_NE(Philox4x32::Block(ctr, key),
            Philox4x32::Block({1, 2, 3, 5}, key));
  EXPECT_NE(Philox4x32::Block(ctr, key), Philox4x32::Block(ctr, {5, 7}));
}

TEST(PhiloxTest, DeriveStreamSeedIsStableAndCallSiteSensitive) {
  const std::uint64_t s = DeriveStreamSeed(kSeed, 7);
  EXPECT_EQ(s, DeriveStreamSeed(kSeed, 7));
  EXPECT_NE(s, DeriveStreamSeed(kSeed, 8));
  EXPECT_NE(s, DeriveStreamSeed(kSeed + 1, 7));
}

// ---------------------------------------------------------------------------
// SeedVector stream reproducibility and independence
// ---------------------------------------------------------------------------

TEST(SeedVectorDeterminismTest, StreamsReproducibleFromFixedSeedVector) {
  SeedVector seeds(kSeed, 64);
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    RandomStream a = seeds.StreamFor(k, /*call_site=*/3);
    RandomStream b = seeds.StreamFor(k, /*call_site=*/3);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SeedVectorDeterminismTest, RebuiltVectorYieldsIdenticalStreams) {
  SeedVector first(kSeed, 32);
  SeedVector second(kSeed, 32);
  for (std::size_t k = 0; k < 32; ++k) {
    ASSERT_EQ(first.seed(k), second.seed(k));
    RandomStream a = first.StreamFor(k, 1);
    RandomStream b = second.StreamFor(k, 1);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SeedVectorDeterminismTest, SampleIndicesAreIndependent) {
  // Draining sample k's stream must not affect sample k+1's draws: each
  // stream is derived solely from (sigma_k, call_site), never from shared
  // sequential state.
  SeedVector seeds(kSeed, 8);

  RandomStream fresh = seeds.StreamFor(5, 0);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(fresh.NextUint64());

  for (std::size_t k = 0; k < 5; ++k) {
    RandomStream burn = seeds.StreamFor(k, 0);
    for (int i = 0; i < 1000; ++i) burn.NextUint64();
  }
  RandomStream after = seeds.StreamFor(5, 0);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(after.NextUint64(), expected[i]);
}

TEST(SeedVectorDeterminismTest, DistinctCellsGetDistinctStreams) {
  SeedVector seeds(kSeed, 16);
  std::set<std::uint64_t> firsts;
  for (std::size_t k = 0; k < 16; ++k) {
    for (std::uint64_t site = 0; site < 4; ++site) {
      firsts.insert(seeds.StreamFor(k, site).NextUint64());
    }
  }
  EXPECT_EQ(firsts.size(), 64u);  // no collisions across (k, site) cells
}

TEST(SeedVectorDeterminismTest, EnsureSizeDoesNotDisturbExistingSeeds) {
  SeedVector seeds(kSeed, 16);
  std::vector<std::uint64_t> before;
  for (std::size_t k = 0; k < 16; ++k) before.push_back(seeds.seed(k));
  seeds.EnsureSize(64);
  EXPECT_EQ(seeds.size(), 64u);
  for (std::size_t k = 0; k < 16; ++k) ASSERT_EQ(seeds.seed(k), before[k]);
}

// ---------------------------------------------------------------------------
// Scheduling independence
// ---------------------------------------------------------------------------

TEST(SeedVectorDeterminismTest, ConcurrentDrawsMatchSerialDraws) {
  // Generate the same (sample, call-site) grid serially and from many
  // threads in scrambled order; the values must be bit-identical, which is
  // what lets RunSweep schedule points on any thread.
  constexpr std::size_t kSamples = 32;
  SeedVector seeds(kSeed, kSamples);

  std::vector<double> serial(kSamples);
  for (std::size_t k = 0; k < kSamples; ++k) {
    RandomStream s = seeds.StreamFor(k, 9);
    serial[k] = s.Gaussian() + s.Exponential(2.0) + s.NextDouble();
  }

  std::vector<double> threaded(kSamples);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      // Interleaved, reversed assignment: worker w handles k ≡ w (mod 4)
      // from the top down.
      for (std::size_t k = kSamples - 1 - static_cast<std::size_t>(w);
           k < kSamples; k -= 4) {
        RandomStream s = seeds.StreamFor(k, 9);
        threaded[k] = s.Gaussian() + s.Exponential(2.0) + s.NextDouble();
        if (k < 4) break;
      }
    });
  }
  for (auto& t : workers) t.join();

  for (std::size_t k = 0; k < kSamples; ++k) {
    std::uint64_t a, b;
    std::memcpy(&a, &serial[k], sizeof a);
    std::memcpy(&b, &threaded[k], sizeof b);
    ASSERT_EQ(a, b) << "sample " << k << " differs bitwise";
  }
}

}  // namespace
}  // namespace jigsaw
