// Cross-cutting property tests: invariants that must hold across the
// whole configuration space (index strategies, tolerances, thread counts,
// branching factors) plus failure injection for misbehaving black boxes.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/optimizer.h"
#include "core/sim_runner.h"
#include "core/symbolic.h"
#include "interactive/interactive_session.h"
#include "markov/chain_runner.h"
#include "markov/markov_models.h"
#include "models/cloud_models.h"

namespace jigsaw {
namespace {

// ---------------------------------------------------------------------------
// Index strategies are interchangeable: identical results and identical
// basis-store evolution (candidate sets are supersets of true matches and
// the store is canonical — two mappable bases would have been merged at
// insertion).
// ---------------------------------------------------------------------------

class IndexEquivalenceTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexEquivalenceTest, SweepResultsIdenticalToArrayOracle) {
  BlackBoxSimFunction fn(MakeCapacityModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{0, 15, 1}}).ok());
  ASSERT_TRUE(space.Add({"p1", RangeDomain{0, 12, 4}}).ok());
  ASSERT_TRUE(space.Add({"p2", RangeDomain{0, 12, 6}}).ok());

  RunConfig oracle_cfg;
  oracle_cfg.num_samples = 300;
  oracle_cfg.index_kind = IndexKind::kArray;
  SimulationRunner oracle(oracle_cfg);
  const auto expected = oracle.RunSweep(fn, space);

  RunConfig cfg = oracle_cfg;
  cfg.index_kind = GetParam();
  SimulationRunner runner(cfg);
  const auto actual = runner.RunSweep(fn, space);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_DOUBLE_EQ(actual[i].metrics.mean, expected[i].metrics.mean)
        << "point " << i;
    EXPECT_DOUBLE_EQ(actual[i].metrics.stddev, expected[i].metrics.stddev);
    EXPECT_EQ(actual[i].reused, expected[i].reused) << "point " << i;
  }
  EXPECT_EQ(runner.basis_store().size(), oracle.basis_store().size());
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, IndexEquivalenceTest,
                         ::testing::Values(IndexKind::kArray,
                                           IndexKind::kNormalization,
                                           IndexKind::kSortedSid),
                         [](const auto& info) {
                           return IndexKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Tolerance sweep: mappings accepted within tolerance, rejected beyond.
// ---------------------------------------------------------------------------

class ToleranceTest : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceTest, PerturbationAcceptedIffWithinTolerance) {
  const double tol = GetParam();
  const std::vector<double> base = {0.5, 1.5, 2.5, 3.5, 4.5, 5.5};
  std::vector<double> mapped;
  for (double x : base) mapped.push_back(2.0 * x + 1.0);

  // Clean map: always found.
  EXPECT_NE(FindLinearMapping(Fingerprint(base), Fingerprint(mapped), tol),
            nullptr);

  // Perturb one non-pivot entry by 10x the tolerance: must be rejected.
  std::vector<double> bad = mapped;
  bad[4] *= 1.0 + 20.0 * tol;
  EXPECT_EQ(FindLinearMapping(Fingerprint(base), Fingerprint(bad), tol),
            nullptr);

  // Perturb well inside tolerance: must still be accepted.
  std::vector<double> ok = mapped;
  ok[4] *= 1.0 + 0.01 * tol;
  EXPECT_NE(FindLinearMapping(Fingerprint(base), Fingerprint(ok), tol),
            nullptr);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceTest,
                         ::testing::Values(1e-12, 1e-9, 1e-6, 1e-3));

// ---------------------------------------------------------------------------
// Markov branching sweep: the fingerprint instances of the jump runner
// are always stepped honestly, so they agree with the naive runner bit
// for bit at every branching factor.
// ---------------------------------------------------------------------------

class BranchingTest : public ::testing::TestWithParam<double> {};

TEST_P(BranchingTest, FingerprintInstancesExactAtAllBranchings) {
  MarkovBranchConfig mcfg;
  mcfg.branching = GetParam();
  MarkovBranchProcess process(mcfg);
  RunConfig cfg;
  cfg.num_samples = 60;
  cfg.fingerprint_size = 8;
  NaiveChainRunner naive(cfg);
  MarkovJumpRunner jump(cfg);
  const auto a = naive.Run(process, 96);
  const auto b = jump.Run(process, 96);
  for (std::size_t k = 0; k < cfg.fingerprint_size; ++k) {
    EXPECT_DOUBLE_EQ(a.final_states[k], b.final_states[k])
        << "instance " << k << " branching " << GetParam();
  }
  // Work never exceeds the naive runner's by more than the checkpointing
  // overhead bound (each honest step costs m, plus estimator probes).
  EXPECT_LE(b.stats.step_invocations,
            a.stats.step_invocations + 96 * cfg.fingerprint_size);
}

INSTANTIATE_TEST_SUITE_P(Branchings, BranchingTest,
                         ::testing::Values(0.0, 1e-4, 1e-3, 1e-2, 0.05,
                                           0.25));

// ---------------------------------------------------------------------------
// Failure injection: models returning NaN / Inf must not crash, corrupt
// the index, or leak into other points' results.
// ---------------------------------------------------------------------------

SimFunctionPtr PoisonedDemand() {
  auto model = MakeDemandModel({});
  return std::make_shared<CallableSimFunction>(
      "poisoned",
      [model](std::span<const double> p, std::size_t k,
              const SeedVector& seeds) {
        if (p[0] == 13.0) return std::numeric_limits<double>::quiet_NaN();
        if (p[0] == 17.0) return std::numeric_limits<double>::infinity();
        return InvokeSeeded(*model, p, seeds.seed(k));
      });
}

class PoisonTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(PoisonTest, NaNAndInfPointsAreIsolated) {
  auto fn = PoisonedDemand();
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{10, 20, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());

  RunConfig cfg;
  cfg.num_samples = 100;
  cfg.index_kind = GetParam();
  SimulationRunner runner(cfg);
  const auto results = runner.RunSweep(*fn, space);
  ASSERT_EQ(results.size(), 11u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double week = 10.0 + static_cast<double>(i);
    if (week == 13.0) {
      EXPECT_TRUE(std::isnan(results[i].metrics.mean));
      EXPECT_FALSE(results[i].reused);  // NaN never maps
    } else if (week == 17.0) {
      // Welford over all-infinite samples degrades to NaN (inf - inf);
      // either way the poison must stay visible, never a finite number.
      EXPECT_FALSE(std::isfinite(results[i].metrics.mean));
    } else {
      // Healthy points are unaffected by their poisoned neighbors.
      EXPECT_TRUE(std::isfinite(results[i].metrics.mean));
      EXPECT_NEAR(results[i].metrics.mean, week, 2.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, PoisonTest,
                         ::testing::Values(IndexKind::kArray,
                                           IndexKind::kNormalization,
                                           IndexKind::kSortedSid),
                         [](const auto& info) {
                           return IndexKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Determinism across full configurations.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  BlackBoxSimFunction fn(MakeOverloadModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{30, 45, 1}}).ok());
  ASSERT_TRUE(space.Add({"p1", SetDomain{{36.0}}}).ok());
  ASSERT_TRUE(space.Add({"p2", SetDomain{{44.0}}}).ok());
  RunConfig cfg;
  cfg.num_samples = 250;
  SimulationRunner r1(cfg);
  SimulationRunner r2(cfg);
  const auto a = r1.RunSweep(fn, space);
  const auto b = r2.RunSweep(fn, space);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metrics.mean, b[i].metrics.mean);
    EXPECT_EQ(a[i].reused, b[i].reused);
    EXPECT_EQ(a[i].basis_id, b[i].basis_id);
  }
}

TEST(DeterminismTest, InteractiveSessionsReplayIdentically) {
  auto fn =
      std::make_shared<BlackBoxSimFunction>(MakeDemandModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 20, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  InteractiveConfig cfg;
  cfg.run.num_samples = 200;
  cfg.max_samples = 200;

  InteractiveSession s1(fn, space, cfg);
  InteractiveSession s2(fn, space, cfg);
  ASSERT_TRUE(s1.SetFocus(5).ok());
  ASSERT_TRUE(s2.SetFocus(5).ok());
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(s1.Tick(), s2.Tick()) << "tick " << i;
  }
  const auto e1 = s1.EstimateFor(5);
  const auto e2 = s2.EstimateFor(5);
  EXPECT_EQ(e1.mean, e2.mean);
  EXPECT_EQ(e1.support, e2.support);
  EXPECT_EQ(s1.stats().evaluations, s2.stats().evaluations);
}

TEST(DeterminismTest, MasterSeedChangesResultsButNotDecisionsShape) {
  BlackBoxSimFunction fn(MakeDemandModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 10, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  RunConfig cfg;
  cfg.num_samples = 400;
  SimulationRunner r1(cfg);
  cfg.master_seed ^= 0x1234567;
  SimulationRunner r2(cfg);
  const auto a = r1.RunSweep(fn, space);
  const auto b = r2.RunSweep(fn, space);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metrics.mean != b[i].metrics.mean) any_difference = true;
    // Both unbiased estimates of the same expectation.
    EXPECT_NEAR(a[i].metrics.mean, b[i].metrics.mean,
                8 * (a[i].metrics.std_error + b[i].metrics.std_error));
  }
  EXPECT_TRUE(any_difference);  // different seeds, different samples
  // Structure (one basis for the whole demand sweep) is seed-independent.
  EXPECT_EQ(r1.basis_store().size(), r2.basis_store().size());
}

// ---------------------------------------------------------------------------
// Optimizer with mixed aggregates and multiple constraints.
// ---------------------------------------------------------------------------

TEST(OptimizerPropertyTest, MultipleConstraintsIntersect) {
  CloudModelConfig mcfg;
  Scenario scenario;
  ASSERT_TRUE(scenario.params.Add({"week", RangeDomain{30, 50, 5}}).ok());
  ASSERT_TRUE(
      scenario.params.Add({"purchase", RangeDomain{20, 44, 4}}).ok());
  auto overload = MakeOverloadModel(mcfg);
  auto capacity = MakeCapacityModel(mcfg);
  scenario.columns.push_back(ScenarioColumn{
      "overload", std::make_shared<CallableSimFunction>(
                      "overload",
                      [overload](std::span<const double> p, std::size_t k,
                                 const SeedVector& seeds) {
                        const std::vector<double> a = {p[0], p[1], p[1]};
                        return InvokeSeeded(*overload, a, seeds.seed(k), 1);
                      })});
  scenario.columns.push_back(ScenarioColumn{
      "capacity", std::make_shared<CallableSimFunction>(
                      "capacity",
                      [capacity](std::span<const double> p, std::size_t k,
                                 const SeedVector& seeds) {
                        const std::vector<double> a = {p[0], p[1], p[1]};
                        return InvokeSeeded(*capacity, a, seeds.seed(k), 2);
                      })});

  RunConfig cfg;
  cfg.num_samples = 300;
  SimulationRunner runner(cfg);
  Optimizer optimizer(&runner);

  OptimizeSpec spec;
  spec.group_params = {"purchase"};
  // Risk bound (MAX over weeks) + average capacity floor (AVG over weeks).
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kMax, MetricSelector::kExpect, "overload", CmpOp::kLt, 0.6});
  spec.constraints.push_back(MetricConstraint{
      SweepAgg::kAvg, MetricSelector::kExpect, "capacity", CmpOp::kGe,
      50.0});
  spec.objectives.push_back(ObjectiveTerm{"purchase", true});

  auto result = optimizer.Run(scenario, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& r = result.value();
  // Both constraint LHS values are recorded for every group.
  for (const auto& g : r.groups) {
    ASSERT_EQ(g.constraint_lhs.size(), 2u);
    // Feasibility is exactly the conjunction of the two comparisons.
    const bool expected =
        g.constraint_lhs[0] < 0.6 && g.constraint_lhs[1] >= 50.0;
    EXPECT_EQ(g.feasible, expected);
  }
  // A very late purchase violates the capacity floor: not every group is
  // feasible, and the chosen group (if any) satisfies both bounds.
  if (r.found) {
    const auto* best = &r.groups[0];
    for (const auto& g : r.groups) {
      if (g.group_valuation == r.best_valuation) best = &g;
    }
    EXPECT_TRUE(best->feasible);
  }
}

// ---------------------------------------------------------------------------
// Symbolic closure properties.
// ---------------------------------------------------------------------------

TEST(SymbolicPropertyTest, AffineAlgebraClosesOverSameBasis) {
  std::vector<double> basis = {0.3, -1.2, 2.7, 0.9};
  SymbolicVar x(0, &basis, 2.0, -1.0);
  SymbolicVar y(0, &basis, -0.5, 3.0);
  auto sum = x.Add(y, nullptr);
  auto diff = x.Sub(y, nullptr);
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(diff.ok());
  for (std::size_t k = 0; k < basis.size(); ++k) {
    EXPECT_NEAR(sum.value().SampleAt(k), x.SampleAt(k) + y.SampleAt(k),
                1e-12);
    EXPECT_NEAR(diff.value().SampleAt(k), x.SampleAt(k) - y.SampleAt(k),
                1e-12);
  }
  // (X + Y) - Y == X, symbolically.
  auto back = sum.value().Sub(y, nullptr);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back.value().alpha(), x.alpha(), 1e-12);
  EXPECT_NEAR(back.value().beta(), x.beta(), 1e-12);
}

TEST(SymbolicPropertyTest, ProbGreaterIsComplementary) {
  std::vector<double> b1 = {1.0, 5.0, 3.0, 7.0, 2.0};
  std::vector<double> b2 = {2.0, 4.0, 4.0, 6.0, 1.0};
  SymbolicVar x(0, &b1, 1.0, 0.0);
  SymbolicVar y(1, &b2, 1.0, 0.0);
  const double pxy = x.ProbGreater(y).value();
  const double pyx = y.ProbGreater(x).value();
  // No ties in this data: probabilities are complementary.
  EXPECT_DOUBLE_EQ(pxy + pyx, 1.0);
}

}  // namespace
}  // namespace jigsaw
