/// \file serve_test.cc
/// The serving-layer acceptance suite: N concurrent clients over shared
/// immutable snapshots, each proven bit-identical to a standalone serial
/// run. Every suite here is named Serve* so the TSan CI job can pin the
/// whole file with --gtest_filter=Serve*.
///
/// The determinism oracle is always the same: for session k, an
/// independent single-tenant ScriptRunner under StandaloneTwinConfig
/// (session k's seed, one thread, no shared pool) re-runs the script
/// text from scratch, and the concurrent outcome must match it in
/// values, retained draws, metrics, stats, and (for failing scripts)
/// error text — regardless of sibling count, pool width, or scheduling.

#include "serve/session_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "grid_test_util.h"
#include "interactive/auto_prime.h"
#include "models/cloud_models.h"
#include "pdb/vg_table.h"
#include "sql/script_runner.h"

namespace jigsaw::serve {
namespace {

using sql::MonteCarloOutcome;
using sql::ScriptOutcome;
using sql::ScriptRunner;

constexpr const char* kScenario =
    "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
    "SELECT DemandModel(@w, 52) AS demand,"
    "       2 * demand AS doubled INTO r;";

const std::string kSweepScript = std::string(kScenario) +
                                 "MONTECARLO OVER @w;";
const std::string kMonteCarloScript = std::string(kScenario) +
                                      "MONTECARLO;";
const std::string kLayeredSweepScript =
    std::string(kScenario) + "MONTECARLO OVER @w USING LAYERED;";

/// Fails on some world > 0 (the world-0 bind probe passes at p=0.97),
/// with a deterministic lowest-failing-world error.
constexpr const char* kFaultyScript =
    "SELECT 1 / CoinFlip(0.97) AS q INTO r; MONTECARLO;";

void ExpectSameMetrics(const OutputMetrics& a, const OutputMetrics& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.std_error, b.std_error);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  // Draw-level identity, not just summary identity.
  EXPECT_EQ(a.samples, b.samples);
}

void ExpectSameColumns(const std::map<std::string, OutputMetrics>& a,
                       const std::map<std::string, OutputMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, metrics] : a) {
    SCOPED_TRACE("column " + name);
    auto it = b.find(name);
    ASSERT_NE(it, b.end());
    ExpectSameMetrics(metrics, it->second);
  }
}

void ExpectSameOutcome(const ScriptOutcome& a, const ScriptOutcome& b) {
  ASSERT_EQ(a.montecarlo.has_value(), b.montecarlo.has_value());
  if (a.montecarlo) {
    const MonteCarloOutcome& ma = *a.montecarlo;
    const MonteCarloOutcome& mb = *b.montecarlo;
    EXPECT_EQ(ma.worlds, mb.worlds);
    EXPECT_EQ(ma.layered, mb.layered);
    EXPECT_EQ(ma.sweep_param, mb.sweep_param);
    EXPECT_EQ(ma.master_seed, mb.master_seed);
    ExpectSameColumns(ma.columns, mb.columns);
    ASSERT_EQ(ma.points.size(), mb.points.size());
    for (std::size_t k = 0; k < ma.points.size(); ++k) {
      SCOPED_TRACE(::testing::Message() << "sweep point " << k);
      EXPECT_EQ(ma.points[k].value, mb.points[k].value);
      ExpectSameColumns(ma.points[k].columns, mb.points[k].columns);
    }
  }
  ASSERT_EQ(a.optimize.has_value(), b.optimize.has_value());
  if (a.optimize) EXPECT_EQ(a.optimize->ToString(), b.optimize->ToString());
  EXPECT_EQ(a.runner_stats.points_evaluated, b.runner_stats.points_evaluated);
  EXPECT_EQ(a.runner_stats.points_reused, b.runner_stats.points_reused);
  EXPECT_EQ(a.runner_stats.blackbox_invocations,
            b.runner_stats.blackbox_invocations);
  EXPECT_EQ(a.basis_count, b.basis_count);
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterCloudModels(&registry_).ok());
    // Bernoulli helper for the fault suite: 0/1 draws so division blows
    // up on some world > 0 but not on the world-0 bind probe.
    registry_.RegisterOrReplace(std::make_shared<CallableBlackBox>(
        "CoinFlip", std::vector<std::string>{"p"},
        [](std::span<const double> params, RandomStream& rng) {
          return rng.NextDouble() < params[0] ? 1.0 : 0.0;
        }));
  }

  RunConfig BaseConfig(std::size_t threads) {
    RunConfig cfg;
    cfg.num_samples = 48;
    cfg.num_threads = threads;
    cfg.keep_samples = true;  // draw-level identity checks
    return cfg;
  }

  /// The standalone oracle: a fresh single-tenant runner under the
  /// session's seed, serial, re-running the text from scratch.
  Result<ScriptOutcome> RunStandalone(const Session& session,
                                      const std::string& text) {
    ScriptRunner runner(&registry_, StandaloneTwinConfig(session));
    return runner.Run(text);
  }

  ModelRegistry registry_;
};

// ---------------------------------------------------------------------------
// The acceptance grid: sessions {1,4,16} x pool threads {1,2,8}, every
// concurrent client bit-identical to its standalone serial twin.
// ---------------------------------------------------------------------------

using ServeGridTest = ServeTest;

TEST_F(ServeGridTest, ConcurrentSweepsMatchStandaloneTwins) {
  test::ForEachSessionGridPoint([&](std::size_t sessions,
                                    std::size_t threads) {
    SessionServer server(&registry_, BaseConfig(threads));
    ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());

    std::vector<Session*> clients;
    for (std::size_t s = 0; s < sessions; ++s) {
      clients.push_back(&server.Connect());
    }

    // Every client runs on its own thread, all in flight at once.
    std::vector<Result<ScriptOutcome>> outcomes(
        sessions, Status::Internal("not run"));
    std::vector<std::thread> threads_vec;
    threads_vec.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) {
      threads_vec.emplace_back(
          [&, s] { outcomes[s] = clients[s]->Run("sweep"); });
    }
    for (auto& t : threads_vec) t.join();

    for (std::size_t s = 0; s < sessions; ++s) {
      SCOPED_TRACE(::testing::Message() << "session " << s);
      ASSERT_TRUE(outcomes[s].ok()) << outcomes[s].status().ToString();
      auto twin = RunStandalone(*clients[s], kSweepScript);
      ASSERT_TRUE(twin.ok()) << twin.status().ToString();
      ExpectSameOutcome(outcomes[s].value(), twin.value());
      // Report bytes are only comparable at matching configs (the report
      // prints the thread count); at threads=1 the twin IS the matching
      // config, so the full human-readable output must coincide too.
      if (threads == 1) {
        EXPECT_EQ(outcomes[s].value().Report(), twin.value().Report());
      }
    }
  });
}

TEST_F(ServeGridTest, MixedWorkloadUnderSaturationMatchesTwins) {
  // 16 sessions on a 2-thread pool, running three different statement
  // shapes concurrently: saturation degrades throughput, never results.
  constexpr std::size_t kSessions = 16;
  SessionServer server(&registry_, BaseConfig(2));
  ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());
  ASSERT_TRUE(server.Publish("mc", kMonteCarloScript).ok());
  ASSERT_TRUE(server.Publish("layered", kLayeredSweepScript).ok());
  const char* names[] = {"sweep", "mc", "layered"};
  const std::string* texts[] = {&kSweepScript, &kMonteCarloScript,
                                &kLayeredSweepScript};

  std::vector<Session*> clients;
  for (std::size_t s = 0; s < kSessions; ++s) {
    clients.push_back(&server.Connect());
  }
  std::vector<Result<ScriptOutcome>> outcomes(
      kSessions, Status::Internal("not run"));
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    workers.emplace_back(
        [&, s] { outcomes[s] = clients[s]->Run(names[s % 3]); });
  }
  for (auto& t : workers) t.join();

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE(::testing::Message() << "session " << s << " script "
                                      << names[s % 3]);
    ASSERT_TRUE(outcomes[s].ok()) << outcomes[s].status().ToString();
    auto twin = RunStandalone(*clients[s], *texts[s % 3]);
    ASSERT_TRUE(twin.ok()) << twin.status().ToString();
    ExpectSameOutcome(outcomes[s].value(), twin.value());
  }
}

TEST_F(ServeGridTest, InterpretedTwinSessionsMatchTheirOwnOracle) {
  // A session that opts out of compiled expressions runs the published
  // interpreted plan twin — and must match a standalone interpreted run,
  // while a compiled sibling (running concurrently) matches its own.
  SessionServer server(&registry_, BaseConfig(8));
  ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());
  SessionOptions interp;
  interp.compile_expressions = false;
  Session& a = server.Connect(interp);
  Session& b = server.Connect();
  Result<ScriptOutcome> ra = Status::Internal("not run");
  Result<ScriptOutcome> rb = Status::Internal("not run");
  std::thread ta([&] { ra = a.Run("sweep"); });
  std::thread tb([&] { rb = b.Run("sweep"); });
  ta.join();
  tb.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_FALSE(ra.value().bound.program->compiled());
  EXPECT_TRUE(rb.value().bound.program->compiled());
  auto twin_a = RunStandalone(a, kSweepScript);
  auto twin_b = RunStandalone(b, kSweepScript);
  ASSERT_TRUE(twin_a.ok());
  ASSERT_TRUE(twin_b.ok());
  ExpectSameOutcome(ra.value(), twin_a.value());
  ExpectSameOutcome(rb.value(), twin_b.value());
}

// ---------------------------------------------------------------------------
// Seed namespaces
// ---------------------------------------------------------------------------

using ServeSeedTest = ServeTest;

TEST_F(ServeSeedTest, SessionSeedsAreDistinctAndPure) {
  constexpr std::uint64_t kMaster = 0x5160534A00000001ULL;
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::uint64_t seed = SessionSeed(kMaster, id);
    EXPECT_EQ(seed, SessionSeed(kMaster, id));  // pure
    EXPECT_TRUE(seen.insert(seed).second) << "collision at id " << id;
    EXPECT_NE(seed, kMaster);
    EXPECT_NE(seed, SessionSeed(kMaster ^ 1, id));
  }
}

TEST_F(ServeSeedTest, PrivateNamespacesDrawDisjointWorlds) {
  SessionServer server(&registry_, BaseConfig(2));
  ASSERT_TRUE(server.Publish("mc", kMonteCarloScript).ok());
  Session& a = server.Connect();
  Session& b = server.Connect();
  auto ra = a.Run("mc");
  auto rb = b.Run("mc");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Different namespaces, different draws.
  EXPECT_NE(ra.value().montecarlo->columns.at("demand").samples,
            rb.value().montecarlo->columns.at("demand").samples);
}

TEST_F(ServeSeedTest, SharedNamespaceSessionsCoincideWithEachOther) {
  SessionServer server(&registry_, BaseConfig(2));
  ASSERT_TRUE(server.Publish("mc", kMonteCarloScript).ok());
  SessionOptions shared;
  shared.shared_namespace = true;
  Session& a = server.Connect(shared);
  Session& b = server.Connect(shared);
  EXPECT_EQ(a.config().master_seed, server.base_config().master_seed);
  auto ra = a.Run("mc");
  auto rb = b.Run("mc");
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ExpectSameOutcome(ra.value(), rb.value());
}

// ---------------------------------------------------------------------------
// Shared WorldCache: cross-session contention must keep generation counts
// deterministic (first-insert-wins, one generation per distinct world).
// ---------------------------------------------------------------------------

using ServeWorldCacheTest = ServeTest;

TEST_F(ServeWorldCacheTest, GenerationCountStableUnderCrossSessionRaces) {
  constexpr std::size_t kWorlds = 16;
  constexpr std::size_t kSessions = 8;
  auto users = pdb::MakeUsersVGTable(20, 1.0, 10.0, 0.3);

  // Serial oracle: one namespace realizing every world once.
  pdb::WorldCache serial_cache;
  SeedVector serial_seeds(7, kWorlds);
  std::vector<const pdb::Table*> serial_tables(kWorlds);
  for (std::size_t w = 0; w < kWorlds; ++w) {
    auto t = serial_cache.GetOrGenerate(*users, w, serial_seeds);
    ASSERT_TRUE(t.ok());
    serial_tables[w] = t.value();
  }
  ASSERT_EQ(serial_cache.generation_count(), kWorlds);

  // Same-namespace contention: every session hammers every world
  // concurrently; the cache must realize each world exactly once and
  // every session must observe the serial oracle's values.
  {
    pdb::WorldCache cache;
    std::vector<std::thread> workers;
    // NOT vector<bool>: its packed bits share words, so sibling threads
    // writing "their own" flag would race (TSan flags it).
    std::vector<std::atomic<bool>> ok(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      workers.emplace_back([&, s] {
        SeedVector seeds(7, kWorlds);
        for (std::size_t w = 0; w < kWorlds; ++w) {
          auto t = cache.GetOrGenerate(*users, w, seeds);
          if (!t.ok()) return;
          // Spot-check shape against the serial oracle (values are
          // pointer-identical: first insert wins, later hits read it).
          if (t.value()->num_rows() != serial_tables[w]->num_rows()) return;
        }
        ok[s] = true;
      });
    }
    for (auto& t : workers) t.join();
    for (std::size_t s = 0; s < kSessions; ++s) EXPECT_TRUE(ok[s]);
    EXPECT_EQ(cache.generation_count(), kWorlds);
    EXPECT_EQ(cache.size(), kWorlds);
  }

  // Disjoint namespaces: sessions occupy disjoint keys — one generation
  // per (namespace, world), nobody reads another namespace's draws.
  {
    pdb::WorldCache cache;
    std::vector<std::thread> workers;
    std::vector<std::atomic<bool>> ok(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      workers.emplace_back([&, s] {
        SeedVector seeds(SessionSeed(7, s), kWorlds);
        for (std::size_t w = 0; w < kWorlds; ++w) {
          if (!cache.GetOrGenerate(*users, w, seeds).ok()) return;
        }
        ok[s] = true;
      });
    }
    for (auto& t : workers) t.join();
    for (std::size_t s = 0; s < kSessions; ++s) EXPECT_TRUE(ok[s]);
    EXPECT_EQ(cache.generation_count(), kSessions * kWorlds);
    EXPECT_EQ(cache.size(), kSessions * kWorlds);
  }
}

TEST_F(ServeWorldCacheTest, LayeredSessionsShareOneSnapshotCache) {
  // Layered runs through the server plumb the snapshot's shared cache;
  // results stay twin-identical with it in place.
  SessionServer server(&registry_, BaseConfig(2));
  auto snapshot = server.Publish("layered", kLayeredSweepScript);
  ASSERT_TRUE(snapshot.ok());
  Session& a = server.Connect();
  Session& b = server.Connect();
  Result<ScriptOutcome> ra = Status::Internal("not run");
  Result<ScriptOutcome> rb = Status::Internal("not run");
  std::thread ta([&] { ra = a.Run("layered"); });
  std::thread tb([&] { rb = b.Run("layered"); });
  ta.join();
  tb.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  auto twin_a = RunStandalone(a, kLayeredSweepScript);
  auto twin_b = RunStandalone(b, kLayeredSweepScript);
  ASSERT_TRUE(twin_a.ok());
  ASSERT_TRUE(twin_b.ok());
  ExpectSameOutcome(ra.value(), twin_a.value());
  ExpectSameOutcome(rb.value(), twin_b.value());
}

// ---------------------------------------------------------------------------
// Fault isolation: a failing script must report exactly its standalone
// error and must not poison the snapshot or stall siblings.
// ---------------------------------------------------------------------------

using ServeFaultTest = ServeTest;

TEST_F(ServeFaultTest, MidFlightErrorsMatchTwinAndSpareSiblings) {
  constexpr std::size_t kSessions = 8;
  RunConfig base = BaseConfig(2);
  base.num_samples = 400;  // enough worlds for CoinFlip to land a zero
  SessionServer server(&registry_, base);
  ASSERT_TRUE(server.Publish("faulty", kFaultyScript).ok());
  ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());

  std::vector<Session*> clients;
  for (std::size_t s = 0; s < kSessions; ++s) {
    clients.push_back(&server.Connect());
  }
  std::vector<Result<ScriptOutcome>> outcomes(
      kSessions, Status::Internal("not run"));
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] {
      outcomes[s] = clients[s]->Run(s % 2 == 0 ? "faulty" : "sweep");
    });
  }
  for (auto& t : workers) t.join();

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE(::testing::Message() << "session " << s);
    if (s % 2 == 0) {
      // Failing sessions: exact standalone error (code AND text — the
      // lowest failing world is part of the determinism contract).
      auto twin = RunStandalone(*clients[s], kFaultyScript);
      ASSERT_FALSE(outcomes[s].ok());
      ASSERT_FALSE(twin.ok());
      EXPECT_EQ(outcomes[s].status(), twin.status());
      EXPECT_NE(outcomes[s].status().message().find("division by zero"),
                std::string::npos)
          << outcomes[s].status().ToString();
    } else {
      // Sibling sessions sharing the pool with the failures: untouched.
      ASSERT_TRUE(outcomes[s].ok()) << outcomes[s].status().ToString();
      auto twin = RunStandalone(*clients[s], kSweepScript);
      ASSERT_TRUE(twin.ok());
      ExpectSameOutcome(outcomes[s].value(), twin.value());
    }
  }

  // The snapshot survives its failures: a session that just failed runs
  // the good script — and even the faulty snapshot re-fails identically
  // (no poisoned shared state from the earlier aborts).
  auto after = clients[0]->Run("sweep");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto after_twin = RunStandalone(*clients[0], kSweepScript);
  ASSERT_TRUE(after_twin.ok());
  ExpectSameOutcome(after.value(), after_twin.value());
  auto refail = clients[0]->Run("faulty");
  auto refail_twin = RunStandalone(*clients[0], kFaultyScript);
  ASSERT_FALSE(refail.ok());
  EXPECT_EQ(refail.status(), refail_twin.status());
}

TEST_F(ServeFaultTest, BindTimeErrorsSurfaceAtPublishNotAtRun) {
  SessionServer server(&registry_, BaseConfig(2));
  auto bad = server.Publish("bad", "SELECT NoSuchModel(@x) AS y INTO r;");
  EXPECT_FALSE(bad.ok());
  // Nothing was published; the catalog is unchanged and runs say so.
  Session& session = server.Connect();
  auto run = session.Run("bad");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Catalog publishing: copy-on-write semantics.
// ---------------------------------------------------------------------------

using ServeCatalogTest = ServeTest;

TEST_F(ServeCatalogTest, RepublishSwapsForNewRunsOnly) {
  SessionServer server(&registry_, BaseConfig(1));
  ASSERT_TRUE(server.Publish("s", kMonteCarloScript).ok());
  const std::shared_ptr<const Catalog> before = server.catalog();
  Session& session = server.Connect();
  auto v1 = session.Run("s");
  ASSERT_TRUE(v1.ok());

  // Republish under the same name with a different scenario.
  const std::string v2_script =
      "DECLARE PARAMETER @w AS RANGE 10 TO 30 STEP BY 10;"
      "SELECT DemandModel(@w, 52) AS demand,"
      "       3 * demand AS tripled INTO r;"
      "MONTECARLO;";
  ASSERT_TRUE(server.Publish("s", v2_script).ok());

  // The old catalog handle still holds the old snapshot (a run that had
  // grabbed it would keep executing v1), while new runs see v2.
  EXPECT_EQ(before->at("s")->text, kMonteCarloScript);
  auto v2 = session.Run("s");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value().montecarlo->columns.count("tripled"), 1u);
  auto twin = RunStandalone(session, v2_script);
  ASSERT_TRUE(twin.ok());
  ExpectSameOutcome(v2.value(), twin.value());
}

// ---------------------------------------------------------------------------
// Published (frozen) basis stores.
// ---------------------------------------------------------------------------

using ServeBasisStoreTest = ServeTest;

const std::string kOptimizeScript = std::string(kScenario) +
                                    "MONTECARLO OVER @w;"
                                    "GRAPH OVER @w EXPECT demand;";

TEST_F(ServeBasisStoreTest, WarmStoreServesSharedNamespaceDeterministically) {
  RunConfig base = BaseConfig(2);
  SessionServer server(&registry_, base);
  PublishOptions warm;
  warm.warm_basis_store = true;
  auto snapshot = server.Publish("g", kOptimizeScript, warm);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_NE(snapshot.value()->basis_store, nullptr);
  EXPECT_GT(snapshot.value()->basis_store->size(), 0u);

  // Shared-namespace sessions probe the warm store with its own
  // namespace's fingerprints: hits are deterministic, so concurrent
  // clients agree with each other and with a serial run handed the same
  // frozen store.
  SessionOptions shared;
  shared.shared_namespace = true;
  Session& a = server.Connect(shared);
  Session& b = server.Connect(shared);
  Result<ScriptOutcome> ra = Status::Internal("not run");
  Result<ScriptOutcome> rb = Status::Internal("not run");
  std::thread ta([&] { ra = a.Run("g"); });
  std::thread tb([&] { rb = b.Run("g"); });
  ta.join();
  tb.join();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ExpectSameOutcome(ra.value(), rb.value());
  // The warm store actually served: every graph point's fingerprint was
  // warmed at publish, so the session's own store stays smaller than a
  // cold standalone run's.
  auto cold = RunStandalone(a, kOptimizeScript);
  ASSERT_TRUE(cold.ok());
  EXPECT_LT(ra.value().basis_count, cold.value().basis_count);

  // Serial oracle WITH the same frozen store: bit-identical.
  ScriptRunner serial(&registry_, StandaloneTwinConfig(a));
  sql::SnapshotResources res;
  res.basis_store = snapshot.value()->basis_store.get();
  auto twin = serial.RunBound(
      sql::BoundScript(*snapshot.value()->compiled), {}, res);
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  ExpectSameOutcome(ra.value(), twin.value());
}

TEST_F(ServeBasisStoreTest, PrivateNamespacesMissTheWarmStoreDeterministically) {
  // A private-namespace session's fingerprints are draws from a different
  // seed namespace: probes against the publisher-warmed store miss, and
  // the outcome is identical to a standalone run with no store at all.
  SessionServer server(&registry_, BaseConfig(2));
  PublishOptions warm;
  warm.warm_basis_store = true;
  ASSERT_TRUE(server.Publish("g", kOptimizeScript, warm).ok());
  Session& session = server.Connect();
  auto with_store = session.Run("g");
  ASSERT_TRUE(with_store.ok()) << with_store.status().ToString();
  auto without_store = RunStandalone(session, kOptimizeScript);
  ASSERT_TRUE(without_store.ok());
  ExpectSameOutcome(with_store.value(), without_store.value());
}

// ---------------------------------------------------------------------------
// Interactive priming off concurrent sweeps.
// ---------------------------------------------------------------------------

using ServePrimeTest = ServeTest;

TEST_F(ServePrimeTest, SessionPrimedFromConcurrentSweepMatchesSerialPrime) {
  constexpr std::size_t kSessions = 4;
  SessionServer server(&registry_, BaseConfig(8));
  ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());

  std::vector<Session*> clients;
  for (std::size_t s = 0; s < kSessions; ++s) {
    clients.push_back(&server.Connect());
  }
  std::vector<Result<ScriptOutcome>> outcomes(
      kSessions, Status::Internal("not run"));
  std::vector<std::thread> workers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] { outcomes[s] = clients[s]->Run("sweep"); });
  }
  for (auto& t : workers) t.join();

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE(::testing::Message() << "session " << s);
    ASSERT_TRUE(outcomes[s].ok()) << outcomes[s].status().ToString();

    // Primed off the concurrent sweep...
    auto primed = clients[s]->PrimeInteractive(outcomes[s].value(),
                                               "demand");
    ASSERT_TRUE(primed.ok()) << primed.status().ToString();

    // ...versus primed off a fully serial, standalone pipeline.
    auto twin_outcome = RunStandalone(*clients[s], kSweepScript);
    ASSERT_TRUE(twin_outcome.ok());
    InteractiveConfig twin_cfg;
    twin_cfg.run = StandaloneTwinConfig(*clients[s]);
    auto serial =
        MakeSessionFromOutcome(twin_outcome.value(), "demand", twin_cfg);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    // Every swept point opens already estimated, and both sessions agree
    // exactly — before and after further ticks.
    ASSERT_EQ(primed.value()->num_points(), serial.value()->num_points());
    for (std::size_t p = 0; p < primed.value()->num_points(); ++p) {
      const DisplayEstimate pe = primed.value()->EstimateFor(p);
      const DisplayEstimate se = serial.value()->EstimateFor(p);
      EXPECT_EQ(pe.available, se.available);
      EXPECT_EQ(pe.mean, se.mean);
      EXPECT_EQ(pe.std_error, se.std_error);
      EXPECT_EQ(pe.support, se.support);
      EXPECT_TRUE(pe.available);
      EXPECT_EQ(pe.support, 48);  // every retained world imported
    }
    ASSERT_TRUE(primed.value()->SetFocus(0).ok());
    ASSERT_TRUE(serial.value()->SetFocus(0).ok());
    primed.value()->Run(20);
    serial.value()->Run(20);
    for (std::size_t p = 0; p < primed.value()->num_points(); ++p) {
      const DisplayEstimate pe = primed.value()->EstimateFor(p);
      const DisplayEstimate se = serial.value()->EstimateFor(p);
      EXPECT_EQ(pe.mean, se.mean);
      EXPECT_EQ(pe.std_error, se.std_error);
      EXPECT_EQ(pe.support, se.support);
    }
  }
}

TEST_F(ServePrimeTest, PrimingAcrossNamespacesIsRejected) {
  SessionServer server(&registry_, BaseConfig(1));
  ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());
  Session& a = server.Connect();
  Session& b = server.Connect();
  auto outcome = a.Run("sweep");
  ASSERT_TRUE(outcome.ok());
  // Session b's sample ids are NOT the world ids of a's sweep.
  auto primed = b.PrimeInteractive(outcome.value(), "demand");
  ASSERT_FALSE(primed.ok());
  EXPECT_EQ(primed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(primed.status().message().find("seed namespace"),
            std::string::npos)
      << primed.status().ToString();
}

TEST_F(ServePrimeTest, PrimingWithoutRetainedSamplesIsRejected) {
  RunConfig base = BaseConfig(1);
  base.keep_samples = false;
  SessionServer server(&registry_, base);
  ASSERT_TRUE(server.Publish("sweep", kSweepScript).ok());
  Session& session = server.Connect();
  auto outcome = session.Run("sweep");
  ASSERT_TRUE(outcome.ok());
  auto primed = session.PrimeInteractive(outcome.value(), "demand");
  ASSERT_FALSE(primed.ok());
  EXPECT_EQ(primed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace jigsaw::serve
