// Tests for the batched sampling engine: SampleBatch/EvalBatch contracts
// (native kernels and scalar fallbacks must match the per-sample path
// bit-for-bit), SeedVector span access, the batched chain runners, and
// end-to-end bit-identity of fingerprints, miss simulation and RunSweep
// across batch sizes {1, 7, 64} × thread counts {1, 2, 8}.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/fingerprint.h"
#include "core/parameter_space.h"
#include "grid_test_util.h"
#include "core/sim_runner.h"
#include "markov/chain_runner.h"
#include "markov/markov_models.h"
#include "models/cloud_models.h"
#include "random/seed_vector.h"

namespace jigsaw {
namespace {

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

void ExpectBitIdenticalVectors(const std::vector<double>& a,
                               const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i])) << "entry " << i;
  }
}

void ExpectBitIdenticalMetrics(const OutputMetrics& a,
                               const OutputMetrics& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(Bits(a.mean), Bits(b.mean));
  EXPECT_EQ(Bits(a.stddev), Bits(b.stddev));
  EXPECT_EQ(Bits(a.std_error), Bits(b.std_error));
  EXPECT_EQ(Bits(a.min), Bits(b.min));
  EXPECT_EQ(Bits(a.max), Bits(b.max));
  EXPECT_EQ(Bits(a.p50), Bits(b.p50));
  EXPECT_EQ(Bits(a.p95), Bits(b.p95));
  ExpectBitIdenticalVectors(a.samples, b.samples);
}

// ---------------------------------------------------------------------------
// SeedVector span access
// ---------------------------------------------------------------------------

TEST(SeedSpanTest, MatchesScalarAccess) {
  const SeedVector seeds(0x1234u, 100);
  const auto span = seeds.seed_span(17, 41);
  ASSERT_EQ(span.size(), 41u);
  for (std::size_t i = 0; i < span.size(); ++i) {
    EXPECT_EQ(span[i], seeds.seed(17 + i));
  }
  EXPECT_EQ(seeds.seed_span(0, seeds.size()).size(), seeds.size());
  EXPECT_TRUE(seeds.seed_span(100, 0).empty());
}

// ---------------------------------------------------------------------------
// BlackBox::EvalBatch — every native kernel must reproduce the scalar
// path bit-for-bit (same seed ↦ same draw).
// ---------------------------------------------------------------------------

void ExpectBatchMatchesScalar(const BlackBox& model,
                              std::span<const double> params,
                              std::uint64_t call_site = 0) {
  const SeedVector seeds(0xfeedu, 93);
  const auto sigmas = seeds.seed_span(0, seeds.size());
  std::vector<double> scalar(seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    scalar[k] = InvokeSeeded(model, params, seeds.seed(k), call_site);
  }
  // Whole-range batch and a ragged chunk split must both agree.
  std::vector<double> batched(seeds.size());
  model.EvalBatch(params, sigmas, call_site, batched);
  ExpectBitIdenticalVectors(batched, scalar);
  std::fill(batched.begin(), batched.end(), 0.0);
  for (std::size_t k = 0; k < seeds.size(); k += 7) {
    const std::size_t len = std::min<std::size_t>(7, seeds.size() - k);
    model.EvalBatch(params, sigmas.subspan(k, len), call_site,
                    std::span<double>(batched.data() + k, len));
  }
  ExpectBitIdenticalVectors(batched, scalar);
}

TEST(BatchKernelTest, DemandMatchesScalar) {
  const double params[] = {30.0, 20.0};  // post-release regime
  ExpectBatchMatchesScalar(*MakeDemandModel({}), params);
  const double pre[] = {10.0, 20.0};  // pre-release regime
  ExpectBatchMatchesScalar(*MakeDemandModel({}), pre, /*call_site=*/3);
}

TEST(BatchKernelTest, CapacityMatchesScalar) {
  const double params[] = {30.0, 10.0, 40.0};
  ExpectBatchMatchesScalar(*MakeCapacityModel({}), params);
}

TEST(BatchKernelTest, OverloadMatchesScalar) {
  const double params[] = {45.0, 20.0, 30.0};
  ExpectBatchMatchesScalar(*MakeOverloadModel({}), params);
}

TEST(BatchKernelTest, UserSelectionMatchesScalar) {
  CloudModelConfig cfg;
  cfg.num_users = 50;
  cfg.user_sim_depth = 3;
  const double params[] = {26.0};
  ExpectBatchMatchesScalar(*MakeUserSelectionModel(cfg), params);
}

TEST(BatchKernelTest, SynthBasisMatchesScalar) {
  CloudModelConfig cfg;
  cfg.synth_num_basis = 4;
  for (double point : {0.0, 3.0, 17.0}) {
    const double params[] = {point};
    ExpectBatchMatchesScalar(*MakeSynthBasisModel(cfg), params);
  }
}

TEST(BatchKernelTest, SeasonalDemandMatchesScalar) {
  const double params[] = {13.0};
  ExpectBatchMatchesScalar(*MakeSeasonalDemandModel({}), params);
}

TEST(BatchKernelTest, OutageMatchesScalar) {
  const double params[] = {26.0};
  ExpectBatchMatchesScalar(*MakeOutageModel({}), params);
}

TEST(BatchKernelTest, DefaultEvalBatchLoopsScalar) {
  // A model without a native kernel gets the base-class fallback loop.
  const CallableBlackBox model(
      "mix", {"x"}, [](std::span<const double> p, RandomStream& rng) {
        return rng.Normal(p[0], 1.0) + rng.Exponential(0.5);
      });
  const double params[] = {4.0};
  ExpectBatchMatchesScalar(model, params);
}

// ---------------------------------------------------------------------------
// SimFunction::SampleBatch
// ---------------------------------------------------------------------------

TEST(SampleBatchTest, DefaultImplementationLoopsScalar) {
  const SeedVector seeds(0x99u, 64);
  const CallableSimFunction fn(
      "callable", [](std::span<const double> p, std::size_t k,
                     const SeedVector& s) {
        RandomStream rng = s.StreamFor(k, 0);
        return p[0] * rng.NextDouble() + static_cast<double>(k);
      });
  const double params[] = {2.5};
  std::vector<double> scalar(40), batched(40);
  for (std::size_t k = 0; k < 40; ++k) {
    scalar[k] = fn.Sample(params, 5 + k, seeds);
  }
  fn.SampleBatch(params, 5, seeds, batched);
  ExpectBitIdenticalVectors(batched, scalar);
}

TEST(SampleBatchTest, BlackBoxSimFunctionDelegatesToEvalBatch) {
  const SeedVector seeds(0x77u, 80);
  const BlackBoxSimFunction fn(MakeDemandModel({}), /*call_site=*/2);
  const double params[] = {20.0, 52.0};
  std::vector<double> scalar(33), batched(33);
  for (std::size_t k = 0; k < 33; ++k) {
    scalar[k] = fn.Sample(params, 11 + k, seeds);
  }
  fn.SampleBatch(params, 11, seeds, batched);
  ExpectBitIdenticalVectors(batched, scalar);
}

TEST(FingerprintTest, BatchedComputeMatchesScalarLoop) {
  const SeedVector seeds(0xabcu, 50);
  const BlackBoxSimFunction fn(MakeCapacityModel({}));
  const double params[] = {20.0, 5.0, 15.0};
  const Fingerprint fp = ComputeFingerprint(fn, params, seeds, 10);
  ASSERT_EQ(fp.size(), 10u);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(Bits(fp[k]), Bits(fn.Sample(params, k, seeds)));
  }
}

// ---------------------------------------------------------------------------
// End-to-end bit-identity: fingerprints, miss simulation and RunSweep at
// batch sizes {1, 7, 64} × num_threads {1, 2, 8} — the acceptance grid.
// ---------------------------------------------------------------------------

RunConfig GridConfig(std::size_t n, std::size_t m) {
  RunConfig cfg;
  cfg.num_samples = n;
  cfg.fingerprint_size = m;
  return cfg;
}

void ExpectGridIdentical(const RunConfig& base_cfg, const SimFunction& fn,
                         const ParameterSpace& space) {
  RunConfig ref_cfg = base_cfg;
  ref_cfg.num_threads = 1;
  ref_cfg.batch_size = 1;  // pure scalar reference
  SimulationRunner reference(ref_cfg);
  const auto expected = reference.RunSweep(fn, space);

  test::ForEachGridPoint([&](std::size_t threads, std::size_t batch) {
    RunConfig cfg = base_cfg;
    cfg.batch_size = batch;
    cfg.num_threads = threads;
    SimulationRunner runner(cfg);
    const auto got = runner.RunSweep(fn, space);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "point " << i);
      EXPECT_EQ(got[i].reused, expected[i].reused);
      EXPECT_EQ(got[i].basis_id, expected[i].basis_id);
      ExpectBitIdenticalMetrics(got[i].metrics, expected[i].metrics);
    }
    EXPECT_EQ(runner.stats().points_reused,
              reference.stats().points_reused);
    EXPECT_EQ(runner.stats().blackbox_invocations,
              reference.stats().blackbox_invocations);
    EXPECT_EQ(runner.basis_store().size(), reference.basis_store().size());
  });
}

TEST(BatchGridTest, FingerprintSweepBitIdentical) {
  const BlackBoxSimFunction fn(MakeDemandModel({}));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 25, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  ExpectGridIdentical(GridConfig(200, 10), fn, space);
}

TEST(BatchGridTest, MixedHitMissSweepBitIdentical) {
  CloudModelConfig mcfg;
  mcfg.synth_num_basis = 4;
  const BlackBoxSimFunction fn(MakeSynthBasisModel(mcfg));
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"point", RangeDomain{0, 39, 1}}).ok());
  ExpectGridIdentical(GridConfig(150, 10), fn, space);
}

TEST(BatchGridTest, NaiveSweepBitIdentical) {
  const BlackBoxSimFunction fn(MakeDemandModel({}));
  RunConfig cfg = GridConfig(150, 10);
  cfg.use_fingerprints = false;
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"week", RangeDomain{1, 20, 1}}).ok());
  ASSERT_TRUE(space.Add({"feature", SetDomain{{52.0}}}).ok());
  ExpectGridIdentical(cfg, fn, space);
}

TEST(BatchGridTest, ScalarFallbackSweepBitIdentical) {
  // A SimFunction with no batch kernel exercises the default SampleBatch
  // loop underneath the whole batched pipeline.
  const CallableSimFunction fn(
      "fallback", [](std::span<const double> p, std::size_t k,
                     const SeedVector& s) {
        RandomStream rng = s.StreamFor(k, 7);
        return rng.Normal(3.0 * p[0], 1.0 + 0.1 * p[0]);
      });
  ParameterSpace space;
  ASSERT_TRUE(space.Add({"x", RangeDomain{1, 20, 1}}).ok());
  ExpectGridIdentical(GridConfig(150, 10), fn, space);
}

TEST(BatchGridTest, MissSimulationMetricsBitIdenticalAcrossBatchSizes) {
  const BlackBoxSimFunction fn(MakeCapacityModel({}));
  const double params[] = {30.0, 10.0, 20.0};
  RunConfig ref_cfg = GridConfig(500, 10);
  ref_cfg.batch_size = 1;
  SimulationRunner reference(ref_cfg);
  const PointResult expected = reference.RunPoint(fn, params);
  ASSERT_FALSE(expected.reused);
  for (std::size_t batch : {7u, 64u, 1000u}) {
    RunConfig cfg = GridConfig(500, 10);
    cfg.batch_size = batch;
    SimulationRunner runner(cfg);
    const PointResult got = runner.RunPoint(fn, params);
    SCOPED_TRACE(::testing::Message() << "batch " << batch);
    EXPECT_FALSE(got.reused);
    ExpectBitIdenticalMetrics(got.metrics, expected.metrics);
  }
}

// ---------------------------------------------------------------------------
// Batched chain runners
// ---------------------------------------------------------------------------

void ExpectChainRunsIdentical(const MarkovProcess& process,
                              std::int64_t target) {
  RunConfig ref_cfg;
  ref_cfg.num_samples = 96;
  ref_cfg.fingerprint_size = 8;
  ref_cfg.batch_size = 1;

  const ChainResult naive_ref = NaiveChainRunner(ref_cfg).Run(process, target);
  const ChainResult jump_ref = MarkovJumpRunner(ref_cfg).Run(process, target);

  for (std::size_t batch : {7u, 64u, 256u}) {
    RunConfig cfg = ref_cfg;
    cfg.batch_size = batch;
    SCOPED_TRACE(::testing::Message() << "batch " << batch);

    const ChainResult naive = NaiveChainRunner(cfg).Run(process, target);
    ExpectBitIdenticalVectors(naive.final_states, naive_ref.final_states);
    EXPECT_EQ(naive.stats.step_invocations,
              naive_ref.stats.step_invocations);

    const ChainResult jump = MarkovJumpRunner(cfg).Run(process, target);
    ExpectBitIdenticalVectors(jump.final_states, jump_ref.final_states);
    EXPECT_EQ(jump.stats.step_invocations, jump_ref.stats.step_invocations);
    EXPECT_EQ(jump.stats.estimator_invocations,
              jump_ref.stats.estimator_invocations);
    EXPECT_EQ(jump.stats.checkpoints, jump_ref.stats.checkpoints);
    EXPECT_EQ(jump.stats.full_rebuilds, jump_ref.stats.full_rebuilds);

    const OutputMetrics out = ChainOutputMetrics(
        process, jump, target, MarkovJumpRunner(cfg).seeds(), cfg);
    const OutputMetrics out_ref = ChainOutputMetrics(
        process, jump_ref, target, MarkovJumpRunner(ref_cfg).seeds(),
        ref_cfg);
    ExpectBitIdenticalMetrics(out, out_ref);
  }
}

TEST(ChainBatchTest, MarkovStepBitIdenticalAcrossBatchSizes) {
  ExpectChainRunsIdentical(MarkovStepProcess(MarkovStepConfig{}), 60);
}

TEST(ChainBatchTest, MarkovBranchBitIdenticalAcrossBatchSizes) {
  MarkovBranchConfig cfg;
  cfg.branching = 0.02;  // force a few mismatch rebuilds within 200 steps
  ExpectChainRunsIdentical(MarkovBranchProcess(cfg), 200);
}

}  // namespace
}  // namespace jigsaw
